/**
 * @file
 * Host-side parallelism for experiment sweeps.
 *
 * Simulated runs are single-threaded and self-contained (each owns
 * its System and event queue), so independent runs shard across a
 * std::thread pool. MIGC_JOBS overrides the worker count; the
 * default is one worker per hardware thread.
 */

#ifndef MIGC_SIM_PARALLEL_HH
#define MIGC_SIM_PARALLEL_HH

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/env.hh"

namespace migc
{

/**
 * Worker count for parallel sweeps: MIGC_JOBS, else all cores.
 * A malformed MIGC_JOBS ("abc", "0", "-1") is fatal, matching
 * MIGC_SHARDS / MIGC_SHARD_INDEX: a typo'd job count must not
 * silently fall back to oversubscribing every core. An unset or
 * empty variable still means the hardware default.
 */
inline unsigned
sweepJobs()
{
    if (const char *env = std::getenv("MIGC_JOBS")) {
        if (env[0] != '\0')
            return parseBoundedUnsigned("MIGC_JOBS", env, 1, 4096);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * Run fn(i) for every i in [0, n), sharding dynamically across up
 * to @p jobs worker threads (0 = sweepJobs()). Blocks until all
 * iterations finish. The first exception thrown by any iteration is
 * rethrown in the caller after the pool drains.
 *
 * @p fn must be safe to call concurrently for distinct i.
 */
template <typename Fn>
void
parallelFor(std::size_t n, Fn &&fn, unsigned jobs = 0)
{
    if (n == 0)
        return;
    if (jobs == 0)
        jobs = sweepJobs();
    if (static_cast<std::size_t>(jobs) > n)
        jobs = static_cast<unsigned>(n);

    if (jobs <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mu;

    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(error_mu);
                if (!error)
                    error = std::current_exception();
                // Drain remaining work so the pool exits promptly.
                next.store(n, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();

    if (error)
        std::rethrow_exception(error);
}

} // namespace migc

#endif // MIGC_SIM_PARALLEL_HH
