/**
 * @file
 * Environment-variable and option parsing shared by every layer.
 *
 * parseBoundedUnsigned is the one bounded-unsigned parser behind
 * MIGC_JOBS, MIGC_SHARDS, MIGC_SHARD_INDEX, and migc_sweep's count
 * flags, so validation cannot drift between them: a malformed value
 * is always fatal, never a silent fallback to some default that
 * happens to run (oversubscribing the machine, duplicating another
 * shard's slice, ...).
 */

#ifndef MIGC_SIM_ENV_HH
#define MIGC_SIM_ENV_HH

#include <cstdlib>

#include "sim/logging.hh"

namespace migc
{

/**
 * Parse a decimal @p value in [@p min_value, @p max_value]; fatal
 * (naming @p label) on anything else - including empty text, signs,
 * trailing junk, and out-of-range values.
 */
inline unsigned
parseBoundedUnsigned(const char *label, const char *value,
                     unsigned min_value, unsigned max_value)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(value, &end, 10);
    fatal_if(end == value || *end != '\0' || v < min_value ||
                 v > max_value,
             "%s=%s: expected an integer in [%u, %u]", label, value,
             min_value, max_value);
    return static_cast<unsigned>(v);
}

} // namespace migc

#endif // MIGC_SIM_ENV_HH
