#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace migc
{

Event::~Event()
{
    // Deschedule on destruction so tearing a system down mid-
    // simulation (e.g., after the workload completed but with idle
    // machinery events still pending) is safe. The queue's stale heap
    // entry is invalidated by the stamp and never dereferenced.
    if (scheduled_ && queue_ != nullptr)
        queue_->deschedule(this);
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    panic_if(ev == nullptr, "scheduling null event");
    panic_if(ev->scheduled_, "event '%s' already scheduled",
             ev->name().c_str());
    panic_if(when < curTick_,
             "event '%s' scheduled in the past (%llu < %llu)",
             ev->name().c_str(),
             static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(curTick_));

    ev->scheduled_ = true;
    ev->when_ = when;
    ev->queue_ = this;
    ev->stamp_ = nextStamp_++;
    heap_.push(HeapEntry{when, ev->priority_, nextSeq_++, ev->stamp_, ev});
    ++numPending_;
}

void
EventQueue::deschedule(Event *ev)
{
    if (ev == nullptr || !ev->scheduled_)
        return;
    // Invalidate the heap entry lazily via the stamp.
    ev->scheduled_ = false;
    ev->stamp_ = 0;
    --numPending_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::serviceOne()
{
    while (!heap_.empty()) {
        HeapEntry top = heap_.top();
        heap_.pop();
        Event *ev = top.event;
        if (!ev->scheduled_ || ev->stamp_ != top.stamp) {
            continue; // stale (descheduled or rescheduled) entry
        }
        panic_if(top.when < curTick_, "time went backwards");
        curTick_ = top.when;
        ev->scheduled_ = false;
        ev->stamp_ = 0;
        --numPending_;
        ++numProcessed_;
        ev->process();
        return;
    }
    panic("serviceOne() on an empty event queue");
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (!empty() && n < max_events) {
        serviceOne();
        ++n;
    }
    return n;
}

bool
EventQueue::runUntil(const std::function<bool()> &pred,
                     std::uint64_t max_events)
{
    std::uint64_t n = 0;
    if (pred())
        return true;
    while (!empty() && n < max_events) {
        serviceOne();
        ++n;
        if (pred())
            return true;
    }
    return false;
}

} // namespace migc
