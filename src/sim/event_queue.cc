#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace migc
{

const char *
eventCategoryName(EventCategory c)
{
    switch (c) {
      case EventCategory::generic: return "generic";
      case EventCategory::gpu: return "gpu";
      case EventCategory::cache: return "cache";
      case EventCategory::mem: return "mem";
      case EventCategory::dram: return "dram";
      case EventCategory::stats: return "stats";
    }
    return "?";
}

Event::~Event()
{
    // Deschedule on destruction so tearing a system down mid-
    // simulation (e.g., after the workload completed but with idle
    // machinery events still pending) is safe.
    if (scheduled() && queue_ != nullptr)
        queue_->deschedule(this);
}

void
EventQueue::siftUp(std::size_t i)
{
    HeapSlot slot = heap_[i];
    while (i > 0) {
        std::size_t parent = (i - 1) / heapArity;
        if (!before(slot, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        heap_[i].ev->heapIndex_ = i;
        i = parent;
    }
    heap_[i] = slot;
    slot.ev->heapIndex_ = i;
}

void
EventQueue::siftDown(std::size_t i)
{
    HeapSlot slot = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
        const std::size_t first = heapArity * i + 1;
        if (first >= n)
            break;
        // Pick the earliest-firing child; the lowest index wins ties
        // through strict before(), matching the binary heap's
        // sibling pick so the arity only changes internal layout.
        std::size_t child = first;
        const std::size_t last = std::min(first + heapArity, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(heap_[c], heap_[child]))
                child = c;
        }
        if (!before(heap_[child], slot))
            break;
        heap_[i] = heap_[child];
        heap_[i].ev->heapIndex_ = i;
        i = child;
    }
    heap_[i] = slot;
    slot.ev->heapIndex_ = i;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    panic_if(ev == nullptr, "scheduling null event");
    panic_if(ev->scheduled(), "event '%s' already scheduled",
             ev->name().c_str());
    panic_if(when < curTick_,
             "event '%s' scheduled in the past (%llu < %llu)",
             ev->name().c_str(),
             static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(curTick_));

    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->queue_ = this;
    ev->heapIndex_ = heap_.size();
    heap_.push_back(HeapSlot{when, ev});
    siftUp(ev->heapIndex_);
}

void
EventQueue::deschedule(Event *ev)
{
    if (ev == nullptr || !ev->scheduled())
        return;
    // The index below is only meaningful in the owning queue's heap;
    // acting on a foreign event would silently corrupt both heaps.
    panic_if(ev->queue_ != this,
             "descheduling event '%s' from a queue it is not on",
             ev->name().c_str());

    std::size_t i = ev->heapIndex_;
    ev->heapIndex_ = Event::invalidIndex;

    HeapSlot last = heap_.back();
    heap_.pop_back();
    if (i < heap_.size()) {
        // Refill the vacated slot with the former tail and restore
        // the heap property in whichever direction it was violated.
        heap_[i] = last;
        last.ev->heapIndex_ = i;
        siftDown(i);
        if (last.ev->heapIndex_ == i)
            siftUp(i);
    }
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::reset()
{
    for (HeapSlot &slot : heap_) {
        slot.ev->heapIndex_ = Event::invalidIndex;
        slot.ev->queue_ = nullptr;
    }
    heap_.clear();
    curTick_ = 0;
    nextSeq_ = 0;
    numProcessed_ = 0;
    processedByCategory_.fill(0);
}

Event *
EventQueue::popTop()
{
    Event *top = heap_.front().ev;
    HeapSlot last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        last.ev->heapIndex_ = 0;
        siftDown(0);
    }
    top->heapIndex_ = Event::invalidIndex;
    return top;
}

void
EventQueue::serviceOne()
{
    panic_if(heap_.empty(), "serviceOne() on an empty event queue");

    Event *ev = popTop();
    panic_if(ev->when_ < curTick_, "time went backwards");
    curTick_ = ev->when_;
    ++numProcessed_;
    ++processedByCategory_[static_cast<std::size_t>(ev->category_)];
    if (logEnabled(LogLevel::trace)) {
        // The only place outside error paths that builds an event's
        // name string; unreachable at the default log level.
        inform("tick %llu: event %s",
               static_cast<unsigned long long>(curTick_),
               ev->name().c_str());
    }
    ev->process();
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (!empty() && n < max_events) {
        serviceOne();
        ++n;
    }
    return n;
}

bool
EventQueue::runUntil(const std::function<bool()> &pred,
                     std::uint64_t max_events)
{
    std::uint64_t n = 0;
    if (pred())
        return true;
    while (!empty() && n < max_events) {
        serviceOne();
        ++n;
        if (pred())
            return true;
    }
    return false;
}

} // namespace migc
