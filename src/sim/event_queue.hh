/**
 * @file
 * A deterministic event queue: the heart of the simulator.
 *
 * Events are ordered by (tick, priority, insertion sequence). The
 * insertion sequence guarantees that two events scheduled for the same
 * tick and priority fire in scheduling order, which makes every
 * simulation bit-reproducible.
 *
 * The queue is an intrusive d-ary heap over the Event objects
 * themselves: each event carries its own heap slot index, so
 * scheduling never allocates, descheduling is a true O(log n)
 * removal, and the heap holds exactly the pending events (no stale
 * entries to grow through under reschedule-heavy traffic such as
 * DRAM bank timers). The arity is the compile-time MIGC_EQ_ARITY (a
 * CMake cache variable): wider nodes make the tree shallower, so
 * siftUp — the schedule/deschedule path — does fewer compares, at
 * the cost of more sibling compares per level on siftDown. 4-ary
 * wins the synthetic reschedule storm but loses deep-queue drains
 * and the end-to-end runs (BENCH_micro.json, PR 7), so binary stays
 * the default. The arity never changes pop order because
 * (tick, priority, seq) is a strict total order over events.
 */

#ifndef MIGC_SIM_EVENT_QUEUE_HH
#define MIGC_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace migc
{

class EventQueue;

/**
 * Coarse component attribution for events, so the perf harness can
 * report events/sec by component. Counting is a single array
 * increment on the service path.
 */
enum class EventCategory : std::uint8_t
{
    generic = 0, ///< uncategorized (tests, ad-hoc events)
    gpu,         ///< CU ticks, dispatcher machinery
    cache,       ///< cache retry/writeback-drain machinery
    mem,         ///< packet queues, crossbar
    dram,        ///< channel scheduling
    stats,
};

inline constexpr std::size_t numEventCategories = 6;

/** Short stable name for an event category ("gpu", "dram", ...). */
const char *eventCategoryName(EventCategory c);

/**
 * Base class for schedulable events.
 *
 * Events are owned by their creators (usually as members of
 * simulation objects) and must outlive any pending schedule.
 */
class Event
{
  public:
    /** Smaller value fires first within the same tick. */
    enum Priority : int
    {
        responsePriority = -10, ///< memory responses before new work
        defaultPriority = 0,
        cpuTickPriority = 10,   ///< periodic machinery after messages
        statsPriority = 100,
    };

    explicit Event(int priority = defaultPriority,
                   EventCategory category = EventCategory::generic)
        : priority_(priority), category_(category)
    {}

    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when the event fires. */
    virtual void process() = 0;

    /**
     * Human-readable description for debugging. Only called on error
     * and trace paths, both gated behind the active log level, so no
     * name string is ever built on the hot path.
     */
    virtual std::string name() const { return "anon-event"; }

    bool scheduled() const { return heapIndex_ != invalidIndex; }

    /** The tick this event is scheduled for (valid when scheduled()). */
    Tick when() const { return when_; }

    int priority() const { return priority_; }

    EventCategory category() const { return category_; }

  private:
    friend class EventQueue;

    static constexpr std::size_t invalidIndex = SIZE_MAX;

    Tick when_ = 0;
    std::uint64_t seq_ = 0;       ///< insertion-order tiebreak
    std::size_t heapIndex_ = invalidIndex; ///< slot in the owning heap
    EventQueue *queue_ = nullptr; ///< queue holding a live schedule
    int priority_ = defaultPriority;
    EventCategory category_ = EventCategory::generic;
};

/** An event that runs a bound callable; saves one subclass per use. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback,
                         std::string name,
                         int priority = defaultPriority,
                         EventCategory category = EventCategory::generic)
        : Event(priority, category), callback_(std::move(callback)),
          name_(std::move(name))
    {}

    void process() override { callback_(); }

    std::string name() const override { return name_; }

  private:
    std::function<void()> callback_;
    std::string name_;
};

/**
 * The global-per-simulation event queue.
 *
 * The heap stores pointers to the scheduled events; every event
 * tracks its own index, so schedule/deschedule/reschedule are
 * allocation-free (amortized: the slot vector grows like any vector)
 * and the heap size always equals the pending-event count.
 */
#ifndef MIGC_EQ_ARITY
#define MIGC_EQ_ARITY 2
#endif

class EventQueue
{
  public:
    /** Children per heap node; see the file comment. */
    static constexpr std::size_t heapArity = MIGC_EQ_ARITY;
    static_assert(heapArity >= 2, "heap arity must be >= 2");

    EventQueue() { heap_.reserve(64); }

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p ev at absolute tick @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /** Remove @p ev from the queue; no-op if not scheduled. */
    void deschedule(Event *ev);

    /** Deschedule if needed, then schedule at @p when. */
    void reschedule(Event *ev, Tick when);

    bool empty() const { return heap_.empty(); }

    std::size_t numPending() const { return heap_.size(); }

    /**
     * Heap slots currently in use; always equals numPending() with
     * the intrusive design (the regression test for stale-entry
     * growth asserts this stays bounded under heavy reschedule).
     */
    std::size_t heapSize() const { return heap_.size(); }

    /**
     * Return the queue to its just-constructed state while keeping
     * the heap array's capacity: every pending event is detached
     * (unscheduled, safe to destroy or reschedule), the clock returns
     * to tick 0, the insertion sequence restarts, and the processed
     * counters clear. Used by System::reset() so a worker can re-run
     * a simulation on warm storage; a reset queue is observationally
     * identical to a fresh one.
     */
    void reset();

    /** Pop and process exactly one event. Queue must not be empty. */
    void serviceOne();

    /**
     * Run until the queue is empty or @p max_events have been
     * processed.
     * @return number of events processed.
     */
    std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

    /**
     * Run until @p pred returns true (checked after each event), the
     * queue empties, or @p max_events is hit.
     * @return true iff @p pred was satisfied.
     */
    bool runUntil(const std::function<bool()> &pred,
                  std::uint64_t max_events = UINT64_MAX);

    /** Total events processed over the queue's lifetime. */
    std::uint64_t numProcessed() const { return numProcessed_; }

    /** Events processed attributed to @p c. */
    std::uint64_t
    numProcessed(EventCategory c) const
    {
        return processedByCategory_[static_cast<std::size_t>(c)];
    }

  private:
    /**
     * Heap slot: the fire tick is duplicated next to the event
     * pointer so the common compare (distinct ticks) never chases
     * the pointer; only tick ties dereference for (priority, seq).
     */
    struct HeapSlot
    {
        Tick when;
        Event *ev;
    };

    /** True when @p a fires strictly before @p b. */
    static bool
    before(const HeapSlot &a, const HeapSlot &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.ev->priority_ != b.ev->priority_)
            return a.ev->priority_ < b.ev->priority_;
        return a.ev->seq_ < b.ev->seq_;
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** Detach the root and restore the heap (no field cleanup). */
    Event *popTop();

    std::vector<HeapSlot> heap_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numProcessed_ = 0;
    std::array<std::uint64_t, numEventCategories> processedByCategory_{};
};

} // namespace migc

#endif // MIGC_SIM_EVENT_QUEUE_HH
