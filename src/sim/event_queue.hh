/**
 * @file
 * A deterministic event queue: the heart of the simulator.
 *
 * Events are ordered by (tick, priority, insertion sequence). The
 * insertion sequence guarantees that two events scheduled for the same
 * tick and priority fire in scheduling order, which makes every
 * simulation bit-reproducible.
 */

#ifndef MIGC_SIM_EVENT_QUEUE_HH
#define MIGC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace migc
{

class EventQueue;

/**
 * Base class for schedulable events.
 *
 * Events are owned by their creators (usually as members of
 * simulation objects) and must outlive any pending schedule.
 */
class Event
{
  public:
    /** Smaller value fires first within the same tick. */
    enum Priority : int
    {
        responsePriority = -10, ///< memory responses before new work
        defaultPriority = 0,
        cpuTickPriority = 10,   ///< periodic machinery after messages
        statsPriority = 100,
    };

    explicit Event(int priority = defaultPriority) : priority_(priority) {}

    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when the event fires. */
    virtual void process() = 0;

    /** Human-readable description for debugging. */
    virtual std::string name() const { return "anon-event"; }

    bool scheduled() const { return scheduled_; }

    /** The tick this event is scheduled for (valid when scheduled()). */
    Tick when() const { return when_; }

    int priority() const { return priority_; }

  private:
    friend class EventQueue;

    bool scheduled_ = false;
    Tick when_ = 0;
    int priority_ = defaultPriority;
    std::uint64_t stamp_ = 0;    ///< matches heap entry generation
    EventQueue *queue_ = nullptr; ///< queue holding a live schedule
};

/** An event that runs a bound callable; saves one subclass per use. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback,
                         std::string name,
                         int priority = defaultPriority)
        : Event(priority), callback_(std::move(callback)),
          name_(std::move(name))
    {}

    void process() override { callback_(); }

    std::string name() const override { return name_; }

  private:
    std::function<void()> callback_;
    std::string name_;
};

/**
 * The global-per-simulation event queue.
 *
 * Descheduling is lazy: heap entries carry a generation stamp and
 * stale entries are discarded on pop, so deschedule/reschedule are
 * O(1) and the heap never needs a linear scan.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p ev at absolute tick @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /** Remove @p ev from the queue; no-op if not scheduled. */
    void deschedule(Event *ev);

    /** Deschedule if needed, then schedule at @p when. */
    void reschedule(Event *ev, Tick when);

    bool empty() const { return numPending_ == 0; }

    std::size_t numPending() const { return numPending_; }

    /** Pop and process exactly one event. Queue must not be empty. */
    void serviceOne();

    /**
     * Run until the queue is empty or @p max_events have been
     * processed.
     * @return number of events processed.
     */
    std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

    /**
     * Run until @p pred returns true (checked after each event), the
     * queue empties, or @p max_events is hit.
     * @return true iff @p pred was satisfied.
     */
    bool runUntil(const std::function<bool()> &pred,
                  std::uint64_t max_events = UINT64_MAX);

    /** Total events processed over the queue's lifetime. */
    std::uint64_t numProcessed() const { return numProcessed_; }

  private:
    struct HeapEntry
    {
        Tick when;
        int priority;
        std::uint64_t seq;   ///< global insertion order tiebreak
        std::uint64_t stamp; ///< generation; must match event's
        Event *event;
    };

    struct EntryCompare
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<HeapEntry, std::vector<HeapEntry>, EntryCompare>
        heap_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t nextStamp_ = 1;
    std::size_t numPending_ = 0;
    std::uint64_t numProcessed_ = 0;
};

} // namespace migc

#endif // MIGC_SIM_EVENT_QUEUE_HH
