/**
 * @file
 * Validation of user-visible names that key the on-disk run cache.
 *
 * Workload and policy names become the first two fields of v3 cache
 * CSV rows (core/metrics.hh) and section keys in the sweep cache
 * (core/sweep_engine.hh). A name containing a field separator (','),
 * a line break, or a leading comment marker ('#') serializes into a
 * row that cannot round-trip: on reload it fails the field-count
 * check, is counted as a parse error, and the result is silently
 * re-simulated - cached-and-lost. Such names must therefore be
 * rejected *before* they reach the cache: at registry registration
 * (PolicyRegistry::add / WorkloadRegistry::add), at policy-spec
 * resolution (a custom "@param" variant's full spec becomes its
 * name), and at RunCache::insert as the last line of defense.
 */

#ifndef MIGC_SIM_NAMES_HH
#define MIGC_SIM_NAMES_HH

#include <string>

#include "sim/logging.hh"

namespace migc
{

/**
 * Can @p name round-trip through a v3 cache row unharmed? False for
 * empty names and names containing ',', '\n', '\r', or a leading
 * '#'. (Leading/trailing whitespace also breaks round-tripping -
 * "a, b" reloads as " b" - so it is rejected too.)
 */
inline bool
cacheNameSafe(const std::string &name)
{
    if (name.empty() || name.front() == '#')
        return false;
    if (name.front() == ' ' || name.back() == ' ')
        return false;
    return name.find_first_of(",\n\r") == std::string::npos;
}

/** Fatal unless cacheNameSafe(@p name); @p what labels the field. */
inline void
checkCacheName(const char *what, const std::string &name)
{
    fatal_if(!cacheNameSafe(name),
             "%s name '%s' cannot key the run cache: names must be "
             "non-empty, free of ',' and line breaks, not start with "
             "'#', and carry no leading/trailing spaces (they would "
             "serialize into cache rows that fail to reload and are "
             "silently re-simulated)",
             what, name.c_str());
}

} // namespace migc

#endif // MIGC_SIM_NAMES_HH
