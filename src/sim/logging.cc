#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace migc
{

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string("<format error>");
    }
    std::vector<char> buf(static_cast<std::size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<std::size_t>(len));
}

namespace logging_detail
{

namespace
{

std::atomic<std::uint64_t> warnCounter{0};

int
initialLogLevel()
{
    const char *env = std::getenv("MIGC_LOG");
    if (env == nullptr || *env == '\0')
        return static_cast<int>(LogLevel::info);
    std::string v(env);
    if (v == "quiet" || v == "0")
        return static_cast<int>(LogLevel::quiet);
    if (v == "info" || v == "1")
        return static_cast<int>(LogLevel::info);
    if (v == "debug" || v == "2")
        return static_cast<int>(LogLevel::debug);
    if (v == "trace" || v == "3")
        return static_cast<int>(LogLevel::trace);
    return static_cast<int>(LogLevel::info);
}

} // namespace

int currentLogLevel = initialLogLevel();

void
panicImpl(const char *file, int line, const std::string &m)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", m.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &m)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", m.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &m)
{
    warnCounter.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "warn: %s\n", m.c_str());
}

namespace
{

std::atomic<FILE *> informStream{nullptr};

} // namespace

void
informImpl(const std::string &m)
{
    FILE *out = informStream.load(std::memory_order_relaxed);
    std::fprintf(out != nullptr ? out : stdout, "info: %s\n",
                 m.c_str());
    // Informs are rare and sometimes load-bearing for orchestration
    // (the fleet coordinator announces its resolved tcp port this
    // way); a redirected stdout must not sit on them.
    std::fflush(out != nullptr ? out : stdout);
}

std::uint64_t
warnCount()
{
    return warnCounter.load(std::memory_order_relaxed);
}

} // namespace logging_detail

LogLevel
logLevel()
{
    return static_cast<LogLevel>(logging_detail::currentLogLevel);
}

void
setLogLevel(LogLevel lvl)
{
    logging_detail::currentLogLevel = static_cast<int>(lvl);
}

void
setInformStream(FILE *stream)
{
    logging_detail::informStream.store(stream,
                                       std::memory_order_relaxed);
}

std::string
joinStrings(const std::vector<std::string> &parts, const char *sep)
{
    std::string out;
    for (const auto &p : parts) {
        if (!out.empty())
            out += sep;
        out += p;
    }
    return out;
}

} // namespace migc
