/**
 * @file
 * Error and status reporting, following the gem5 logging discipline.
 *
 * panic()  - an internal invariant was violated (a simulator bug);
 *            aborts so a debugger or core dump can catch it.
 * fatal()  - the user asked for something unsatisfiable (bad config);
 *            exits with a non-zero status.
 * warn()   - functionality may be approximated; simulation continues.
 * inform() - plain status output.
 */

#ifndef MIGC_SIM_LOGGING_HH
#define MIGC_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace migc
{

/** Printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Join @p parts with @p sep ("a, b, c") - error-message lists. */
std::string joinStrings(const std::vector<std::string> &parts,
                        const char *sep = ", ");

/**
 * Verbosity of non-error output. The level gates *argument
 * evaluation*, not just printing: hot paths guard string
 * construction (event names, packet prints) behind logEnabled(), so
 * the default level performs zero logging allocations.
 */
enum class LogLevel : int
{
    quiet = 0, ///< errors and warnings only
    info = 1,  ///< status output (default)
    debug = 2, ///< component debug output
    trace = 3, ///< per-event tracing
};

namespace logging_detail
{

/** Current level; read via logEnabled(). Set from MIGC_LOG at init. */
extern int currentLogLevel;

} // namespace logging_detail

/** Cheap hot-path check: is @p lvl enabled right now? */
inline bool
logEnabled(LogLevel lvl)
{
    return logging_detail::currentLogLevel >= static_cast<int>(lvl);
}

LogLevel logLevel();

void setLogLevel(LogLevel lvl);

/**
 * Redirect inform() output (default: stdout; nullptr restores it).
 * migc_serve's stdin mode points it at stderr so status chatter
 * cannot interleave with protocol responses on stdout.
 */
void setInformStream(std::FILE *stream);

namespace logging_detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &m);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &m);
void warnImpl(const std::string &m);
void informImpl(const std::string &m);

/** Count of warn() calls so far (used by tests). */
std::uint64_t warnCount();

} // namespace logging_detail

} // namespace migc

/** Abort on a simulator bug. Accepts printf-style arguments. */
#define panic(...)                                                          \
    ::migc::logging_detail::panicImpl(__FILE__, __LINE__,                   \
                                      ::migc::csprintf(__VA_ARGS__))

/** Exit on an unsatisfiable user request. */
#define fatal(...)                                                          \
    ::migc::logging_detail::fatalImpl(__FILE__, __LINE__,                   \
                                      ::migc::csprintf(__VA_ARGS__))

/** Panic if @p cond is false. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            panic(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

/** Fatal if @p cond is true. */
#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            fatal(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

#define warn(...)                                                           \
    ::migc::logging_detail::warnImpl(::migc::csprintf(__VA_ARGS__))

#define inform(...)                                                         \
    ::migc::logging_detail::informImpl(::migc::csprintf(__VA_ARGS__))

/**
 * Debug output whose arguments are only evaluated when the debug
 * level is active - safe to use with expensive formatters (packet
 * prints, event names) on hot paths.
 */
#define debug_log(...)                                                      \
    do {                                                                    \
        if (::migc::logEnabled(::migc::LogLevel::debug)) {                  \
            ::migc::logging_detail::informImpl(                             \
                ::migc::csprintf(__VA_ARGS__));                             \
        }                                                                   \
    } while (0)

#endif // MIGC_SIM_LOGGING_HH
