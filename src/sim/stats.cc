#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace migc
{

StatHistogram::StatHistogram(double min, double max, std::size_t buckets)
    : min_(min), max_(max),
      width_((max - min) / static_cast<double>(buckets)),
      buckets_(buckets, 0.0)
{
    panic_if(buckets == 0, "histogram needs at least one bucket");
    panic_if(max <= min, "histogram range is empty");
}

void
StatHistogram::sample(double v, double weight)
{
    double idx_f = (v - min_) / width_;
    std::size_t idx;
    if (idx_f < 0.0) {
        idx = 0;
    } else if (idx_f >= static_cast<double>(buckets_.size())) {
        idx = buckets_.size() - 1;
    } else {
        idx = static_cast<std::size_t>(idx_f);
    }
    buckets_[idx] += weight;
    count_ += weight;
    sum_ += v * weight;
    if (!any_ || v < minSeen_)
        minSeen_ = v;
    if (!any_ || v > maxSeen_)
        maxSeen_ = v;
    any_ = true;
}

double
StatHistogram::bucketLow(std::size_t i) const
{
    return min_ + width_ * static_cast<double>(i);
}

void
StatHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0.0);
    count_ = 0.0;
    sum_ = 0.0;
    minSeen_ = 0.0;
    maxSeen_ = 0.0;
    any_ = false;
}

void
StatGroup::addScalar(const std::string &name, const std::string &desc,
                     const StatScalar *stat)
{
    entries_.push_back(
        Entry{name, desc, [stat]() { return stat->value(); }, nullptr});
}

void
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      std::function<double()> fn)
{
    entries_.push_back(Entry{name, desc, std::move(fn), nullptr});
}

void
StatGroup::addHistogram(const std::string &name, const std::string &desc,
                        const StatHistogram *stat)
{
    entries_.push_back(
        Entry{name, desc, [stat]() { return stat->mean(); }, stat});
}

StatGroup &
StatGroup::child(const std::string &name)
{
    auto it = children_.find(name);
    if (it == children_.end())
        it = children_.emplace(name, StatGroup(name)).first;
    return it->second;
}

const StatGroup::Entry *
StatGroup::findLocal(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

double
StatGroup::get(const std::string &dotted_path) const
{
    auto dot = dotted_path.find('.');
    if (dot == std::string::npos) {
        const Entry *e = findLocal(dotted_path);
        panic_if(e == nullptr, "no stat named '%s' in group '%s'",
                 dotted_path.c_str(), name_.c_str());
        return e->value();
    }
    std::string head = dotted_path.substr(0, dot);
    auto it = children_.find(head);
    panic_if(it == children_.end(), "no stat group '%s' in '%s'",
             head.c_str(), name_.c_str());
    return it->second.get(dotted_path.substr(dot + 1));
}

bool
StatGroup::has(const std::string &dotted_path) const
{
    auto dot = dotted_path.find('.');
    if (dot == std::string::npos)
        return findLocal(dotted_path) != nullptr;
    auto it = children_.find(dotted_path.substr(0, dot));
    if (it == children_.end())
        return false;
    return it->second.has(dotted_path.substr(dot + 1));
}

double
StatGroup::sumOverChildren(const std::string &leaf_path) const
{
    double total = 0.0;
    for (const auto &[name, group] : children_) {
        if (group.has(leaf_path))
            total += group.get(leaf_path);
    }
    return total;
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string base = prefix.empty() ? name_ : prefix;
    for (const auto &e : entries_) {
        std::string path = base.empty() ? e.name : base + "." + e.name;
        os << path << " " << e.value();
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << "\n";
    }
    for (const auto &[name, group] : children_) {
        std::string child_prefix = base.empty() ? name : base + "." + name;
        group.dump(os, child_prefix);
    }
}

void
StatGroup::flatten(std::map<std::string, double> &out,
                   const std::string &prefix) const
{
    std::string base = prefix.empty() ? name_ : prefix;
    for (const auto &e : entries_) {
        std::string path = base.empty() ? e.name : base + "." + e.name;
        out[path] = e.value();
    }
    for (const auto &[name, group] : children_) {
        std::string child_prefix = base.empty() ? name : base + "." + name;
        group.flatten(out, child_prefix);
    }
}

} // namespace migc
