/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic choice in the simulator draws from an explicitly
 * seeded Rng so that runs are bit-reproducible.
 */

#ifndef MIGC_SIM_RNG_HH
#define MIGC_SIM_RNG_HH

#include <cstdint>
#include <string_view>

namespace migc
{

/** One splitmix64 output step (Steele, Lea & Flood). */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/** FNV-1a hash; turns a label into a seed-stream id. */
constexpr std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    return h;
}

/**
 * Derive an independent seed from a base seed and a stream id.
 *
 * Every simulated component (and every run in a parallel sweep)
 * seeds its own Rng from deriveSeed(base, stream), so RNG state is
 * never shared across components or threads and results depend only
 * on (base, stream) - not on construction or execution order.
 */
constexpr std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream)
{
    return splitmix64(splitmix64(base) ^ splitmix64(~stream));
}

/** Label-keyed stream, e.g. deriveSeed(seed, "FwSoft/CacheRW"). */
constexpr std::uint64_t
deriveSeed(std::uint64_t base, std::string_view label)
{
    return deriveSeed(base, fnv1a(label));
}

/** xoshiro256** by Blackman & Vigna; public-domain algorithm. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        // Expand the seed with splitmix64 so nearby seeds diverge.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            word = splitmix64(x);
            x += 0x9E3779B97F4A7C15ULL;
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free-enough reduction.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace migc

#endif // MIGC_SIM_RNG_HH
