/**
 * @file
 * Fundamental simulation types: ticks, cycles, addresses.
 *
 * A Tick is one picosecond of simulated time, following the gem5
 * convention. Clock domains convert between cycles and ticks.
 */

#ifndef MIGC_SIM_TYPES_HH
#define MIGC_SIM_TYPES_HH

#include <compare>
#include <cstdint>
#include <limits>

namespace migc
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Largest representable tick; used as "never". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** One simulated second, in ticks. */
constexpr Tick simSecond = 1'000'000'000'000ULL;

/** One simulated nanosecond, in ticks. */
constexpr Tick simNanosecond = 1'000ULL;

/** A physical memory address. */
using Addr = std::uint64_t;

/**
 * A count of clock cycles in some clock domain.
 *
 * Wrapped in a tiny strong type so that cycle counts are not silently
 * mixed with ticks; conversion goes through ClockDomain.
 */
class Cycles
{
  public:
    Cycles() = default;

    constexpr explicit Cycles(std::uint64_t c) : count_(c) {}

    constexpr std::uint64_t value() const { return count_; }

    constexpr Cycles
    operator+(Cycles other) const
    {
        return Cycles(count_ + other.count_);
    }

    constexpr Cycles
    operator-(Cycles other) const
    {
        return Cycles(count_ - other.count_);
    }

    Cycles &
    operator+=(Cycles other)
    {
        count_ += other.count_;
        return *this;
    }

    constexpr bool operator==(const Cycles &o) const = default;
    constexpr auto operator<=>(const Cycles &o) const = default;

  private:
    std::uint64_t count_ = 0;
};

/**
 * A clock domain: converts cycles to ticks and aligns ticks to edges.
 */
class ClockDomain
{
  public:
    /** @param period_ticks Clock period in ticks (picoseconds). */
    constexpr explicit ClockDomain(Tick period_ticks = 1000)
        : period_(period_ticks)
    {}

    constexpr Tick period() const { return period_; }

    /** Frequency in Hz. */
    constexpr double
    frequency() const
    {
        return static_cast<double>(simSecond) / period_;
    }

    /** Ticks covered by @p c cycles. */
    constexpr Tick
    cyclesToTicks(Cycles c) const
    {
        return c.value() * period_;
    }

    /** Whole cycles elapsed at tick @p t (rounded down). */
    constexpr Cycles
    ticksToCycles(Tick t) const
    {
        return Cycles(t / period_);
    }

    /**
     * The tick of the next clock edge at or after @p now, plus
     * @p delay further cycles.
     */
    constexpr Tick
    clockEdge(Tick now, Cycles delay = Cycles(0)) const
    {
        Tick aligned = ((now + period_ - 1) / period_) * period_;
        return aligned + delay.value() * period_;
    }

  private:
    Tick period_;
};

} // namespace migc

#endif // MIGC_SIM_TYPES_HH
