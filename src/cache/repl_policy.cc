#include "cache/repl_policy.hh"

#include "sim/logging.hh"

namespace migc
{

namespace
{

class LruPolicy : public ReplPolicy
{
  public:
    std::size_t
    victim(CacheBlk *const *candidates, std::size_t count) override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < count; ++i) {
            if (candidates[i]->lastTouch < candidates[best]->lastTouch)
                best = i;
        }
        return best;
    }

    std::string name() const override { return "lru"; }
};

class FifoPolicy : public ReplPolicy
{
  public:
    std::size_t
    victim(CacheBlk *const *candidates, std::size_t count) override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < count; ++i) {
            if (candidates[i]->insertStamp < candidates[best]->insertStamp)
                best = i;
        }
        return best;
    }

    std::string name() const override { return "fifo"; }
};

class RandomPolicy : public ReplPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

    std::size_t
    victim(CacheBlk *const *candidates, std::size_t count) override
    {
        (void)candidates;
        return static_cast<std::size_t>(rng_.below(count));
    }

    std::string name() const override { return "random"; }

    void reset(std::uint64_t seed) override { rng_ = Rng(seed); }

  private:
    Rng rng_;
};

} // namespace

std::unique_ptr<ReplPolicy>
ReplPolicy::create(ReplKind kind, std::uint64_t seed)
{
    switch (kind) {
      case ReplKind::lru:
        return std::make_unique<LruPolicy>();
      case ReplKind::fifo:
        return std::make_unique<FifoPolicy>();
      case ReplKind::random:
        return std::make_unique<RandomPolicy>(seed);
    }
    panic("unknown replacement policy");
}

} // namespace migc
