/**
 * @file
 * Replacement policies for the set-associative tag store.
 */

#ifndef MIGC_CACHE_REPL_POLICY_HH
#define MIGC_CACHE_REPL_POLICY_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/cache_blk.hh"
#include "sim/rng.hh"

namespace migc
{

enum class ReplKind
{
    lru,
    fifo,
    random,
};

/** Strategy object choosing a victim among replaceable blocks. */
class ReplPolicy
{
  public:
    virtual ~ReplPolicy() = default;

    /**
     * Pick a victim among the @p count blocks at @p candidates (all
     * non-busy, non-empty; count >= 1).
     * @return index into the candidate array.
     */
    virtual std::size_t victim(CacheBlk *const *candidates,
                               std::size_t count) = 0;

    /** Convenience overload for tests and ad-hoc callers. */
    std::size_t
    victim(const std::vector<CacheBlk *> &candidates)
    {
        return victim(candidates.data(), candidates.size());
    }

    virtual std::string name() const = 0;

    /**
     * Return to the freshly-created state for @p seed. After
     * reset(s) the policy behaves exactly like create(kind, s)'s
     * result; only the random policy carries state (its RNG).
     */
    virtual void reset(std::uint64_t seed) { (void)seed; }

    /** Factory. @p seed feeds the random policy. */
    static std::unique_ptr<ReplPolicy> create(ReplKind kind,
                                              std::uint64_t seed = 1);
};

} // namespace migc

#endif // MIGC_CACHE_REPL_POLICY_HH
