/**
 * @file
 * Dirty-Block Index (Seshadri et al., ISCA 2014) adapted to the GPU
 * L2 for row-locality-aware cache rinsing (paper Section VII.B).
 *
 * The DBI tracks, per DRAM row, which cached lines of that row are
 * dirty. When any dirty line of a row is evicted, the cache "rinses"
 * the row: it writes back every other dirty line of the same row in
 * one burst, so the DRAM controller sees row-clustered writes. The
 * index has bounded capacity; inserting into a full DBI evicts the
 * least-recently-updated row, which forces that row's rinse as well.
 */

#ifndef MIGC_CACHE_DBI_HH
#define MIGC_CACHE_DBI_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace migc
{

class DirtyBlockIndex
{
  public:
    /** @param capacity maximum rows tracked. */
    explicit DirtyBlockIndex(std::size_t capacity = 64);

    /**
     * Record that @p line_addr (belonging to @p row_id) became dirty.
     * @return the lines of a row evicted from the index to make
     *         space; the caller must rinse them immediately.
     */
    std::vector<Addr> add(std::uint64_t row_id, Addr line_addr);

    /** Remove one line (cleaned or evicted) from its row's entry. */
    void remove(std::uint64_t row_id, Addr line_addr);

    /**
     * Take all lines of @p row_id except @p except_line, removing
     * the row from the index. Used on dirty eviction to find the
     * rinse set.
     */
    std::vector<Addr> takeRow(std::uint64_t row_id, Addr except_line);

    std::size_t rowsTracked() const { return rows_.size(); }

    /** Lines currently tracked for @p row_id (tests). */
    std::size_t rowPopulation(std::uint64_t row_id) const;

    /** Forget every row and zero the stats (System::reset()). */
    void reset();

    void regStats(StatGroup &group);

  private:
    struct RowEntry
    {
        std::vector<Addr> lines;
        std::list<std::uint64_t>::iterator lruIt;
    };

    void touchLru(std::uint64_t row_id, RowEntry &entry);

    std::size_t capacity_;
    std::unordered_map<std::uint64_t, RowEntry> rows_;
    std::list<std::uint64_t> lru_; ///< front = most recently updated

    StatScalar statAdds_;
    StatScalar statRemoves_;
    StatScalar statRowTakes_;
    StatScalar statCapacityEvictions_;
};

} // namespace migc

#endif // MIGC_CACHE_DBI_HH
