/**
 * @file
 * Cache block (line) state.
 */

#ifndef MIGC_CACHE_CACHE_BLK_HH
#define MIGC_CACHE_CACHE_BLK_HH

#include <cstdint>

#include "sim/types.hh"

namespace migc
{

/** GPU cache line states; no reader/writer tracking (Section III). */
enum class BlkState : std::uint8_t
{
    invalid,
    valid,  ///< clean, readable
    dirty,  ///< holds coalesced store data (L2, CacheRW only)
    busy,   ///< allocated; fill in flight
};

/**
 * Per-block metadata. Blocks resident in a Tags store are mirrored
 * into its SoA lanes and bitmaps (see tags.hh): read fields freely,
 * but change `state` or `addr` only through Tags (`insert`,
 * `setState`, `invalidateBlock`, `touch`) or the mirrors desync.
 */
struct CacheBlk
{
    BlkState state = BlkState::invalid;

    /** Line-aligned address this block holds (valid unless invalid). */
    Addr addr = 0;

    /** PC of the instruction whose miss inserted the block. */
    Addr insertPc = 0;

    /** Set once the block services a hit after insertion. */
    bool reused = false;

    /** Replacement bookkeeping: last-touch stamp (LRU). */
    std::uint64_t lastTouch = 0;

    /** Replacement bookkeeping: insertion stamp (FIFO). */
    std::uint64_t insertStamp = 0;

    bool isValid() const
    {
        return state == BlkState::valid || state == BlkState::dirty;
    }

    bool isDirty() const { return state == BlkState::dirty; }

    bool isBusy() const { return state == BlkState::busy; }

    void
    invalidate()
    {
        state = BlkState::invalid;
        reused = false;
        insertPc = 0;
    }
};

} // namespace migc

#endif // MIGC_CACHE_CACHE_BLK_HH
