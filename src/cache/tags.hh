/**
 * @file
 * Set-associative tag store, laid out struct-of-arrays.
 *
 * The per-block metadata (`CacheBlk`) stays the external currency —
 * callers hold `CacheBlk *` and read its fields freely — but the
 * fields the hot paths scan are mirrored into contiguous per-set
 * lanes so lookups never stride through the 48-byte block structs:
 *
 *  - `addrs_`: one 64-bit line address per way (sentinel `kNoAddr`
 *    for non-present ways), the lane `findBlock` SIMD-compares;
 *  - `states_`: the packed `BlkState` byte array the full-array
 *    sweeps (`invalidateClean`, `countState`, `forEachDirty`) scan;
 *  - `validBits_` / `busyBits_`: one bitmap word per set (way i =
 *    bit i). valid covers the readable states (valid | dirty), busy
 *    the fill-pending ways. `busyWays` is a single popcount and
 *    `findVictim` selects candidates straight off the words;
 *  - `replStamps_`: the replacement stamp `findVictim`'s
 *    full-candidate fast path min-scans (lastTouch under LRU,
 *    insertStamp under FIFO).
 *
 * Coherence rule: every state or address change of a resident block
 * MUST go through this class (`insert`, `setState`,
 * `invalidateBlock`, `touch`, `invalidateClean`, `reset`) so the
 * mirrors stay exact. `shadowCoherent()` verifies the invariant and
 * the test suites call it after randomized and golden runs.
 */

#ifndef MIGC_CACHE_TAGS_HH
#define MIGC_CACHE_TAGS_HH

#include <bit>
#include <memory>
#include <vector>

#include "cache/cache_blk.hh"
#include "cache/repl_policy.hh"
#include "cache/simd.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace migc
{

class Tags
{
  public:
    /**
     * @param interleave_bits low line-address bits to strip from the
     *        set index. A bank of an N-way banked cache only ever
     *        sees lines whose low log2(N) line bits equal its bank
     *        id, so those bits must not feed the set index or only
     *        1/N of the sets would ever be used.
     */
    Tags(std::uint64_t size_bytes, unsigned assoc, unsigned line_size,
         ReplKind repl, std::uint64_t seed = 1,
         unsigned interleave_bits = 0);

    unsigned numSets() const { return numSets_; }

    unsigned assoc() const { return assoc_; }

    unsigned lineSize() const { return lineSize_; }

    Addr lineAlign(Addr addr) const { return addr & ~lineMask_; }

    unsigned
    setIndex(Addr addr) const
    {
        return static_cast<unsigned>((addr >> setShift_) &
                                     (numSets_ - 1));
    }

    /** Find the block holding @p addr, or nullptr (any state). */
    CacheBlk *
    findBlock(Addr addr)
    {
        // One SIMD compare sweep over the set's address lane. Only
        // present ways hold a real address (non-present ways hold
        // kNoAddr, which is never line-aligned), so a lane match IS
        // a tag match and ascending-index selection reproduces the
        // scalar walk's first-match way exactly.
        const Addr line = lineAlign(addr);
        const std::size_t base =
            static_cast<std::size_t>(setIndex(addr)) * assoc_;
        const unsigned way = simd::findLane(&addrs_[base], assoc_, line);
        return way < assoc_ ? &blocks_[base + way] : nullptr;
    }

    /** Busy (fill-pending) ways in @p addr's set; feeds the adaptive
     *  occupancy-bypass policy. One popcount on the busy bitmap. */
    unsigned
    busyWays(Addr addr) const
    {
        return static_cast<unsigned>(
            std::popcount(busyBits_[setIndex(addr)]));
    }

    /**
     * Choose a victim way in @p addr's set: an invalid block if one
     * exists, else the replacement policy's pick among non-busy
     * blocks.
     * @return nullptr when every way is busy (allocation must block
     *         or bypass - the paper's Section VI.C.1 stall source).
     */
    CacheBlk *findVictim(Addr addr);

    /** Record a demand access to @p blk for replacement state. */
    void
    touch(CacheBlk *blk)
    {
        blk->lastTouch = ++stamp_;
        if (replKind_ != ReplKind::fifo)
            replStamps_[blockIndex(blk)] = stamp_;
    }

    /** Install @p addr into @p blk in @p state (never invalid). */
    void
    insert(CacheBlk *blk, Addr addr, BlkState state, Addr insert_pc)
    {
        panic_if(blk->isBusy(), "inserting over a busy block");
        panic_if(state == BlkState::invalid,
                 "inserting an invalid block");
        const Addr line = lineAlign(addr);
        blk->addr = line;
        blk->state = state;
        blk->insertPc = insert_pc;
        blk->reused = false;
        blk->insertStamp = ++stamp_;
        blk->lastTouch = stamp_;

        const std::size_t i = blockIndex(blk);
        addrs_[i] = line;
        states_[i] = static_cast<std::uint8_t>(state);
        replStamps_[i] = stamp_;
        setWayBits(i, state);
    }

    /**
     * Transition resident @p blk to @p state (valid <-> dirty, or a
     * fill's busy -> valid/dirty), keeping the packed state array
     * and the valid/busy bitmaps coherent. Use invalidateBlock() to
     * leave the cache.
     */
    void
    setState(CacheBlk *blk, BlkState state)
    {
        panic_if(state == BlkState::invalid,
                 "setState(invalid): use invalidateBlock()");
        panic_if(blk->state == BlkState::invalid,
                 "setState on a non-resident block");
        blk->state = state;
        const std::size_t i = blockIndex(blk);
        states_[i] = static_cast<std::uint8_t>(state);
        setWayBits(i, state);
    }

    /** Invalidate @p blk and drop it from the lookup lanes. */
    void
    invalidateBlock(CacheBlk *blk)
    {
        blk->invalidate();
        const std::size_t i = blockIndex(blk);
        addrs_[i] = kNoAddr;
        states_[i] = static_cast<std::uint8_t>(BlkState::invalid);
        setWayBits(i, BlkState::invalid);
    }

    /**
     * Self-invalidate every clean valid block (kernel-boundary
     * action, paper Section III). Dirty and busy blocks survive:
     * dirty data is only removed by a system-scope flush.
     * @return count invalidated.
     */
    std::uint64_t invalidateClean();

    /**
     * Visit every dirty block (order: set-major, way-minor) via a
     * vector byte-scan of the state array. The callback binds
     * statically (no std::function) - this sits on the rinse/flush
     * path. @p fn may change the visited block's state (through
     * setState/invalidateBlock) but no other block's.
     */
    template <typename Fn>
    void
    forEachDirty(Fn &&fn)
    {
        simd::forEachByteEq(states_.data(), states_.size(),
                            static_cast<std::uint8_t>(BlkState::dirty),
                            [&](std::size_t i) { fn(blocks_[i]); });
    }

    /** Visit all blocks (tests / introspection). Mutating state or
     *  address directly from @p fn would desync the SoA mirrors. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &blk : blocks_)
            fn(blk);
    }

    /** Count blocks in a given state (tests / stats). */
    std::uint64_t countState(BlkState state) const;

    /**
     * Invalidate every block and restart the replacement state
     * (stamps, RNG) as if freshly constructed with @p seed. Keeps
     * the block and scratch storage allocated (System::reset()).
     */
    void reset(std::uint64_t seed);

    /**
     * Verify every SoA mirror against the per-block metadata: the
     * address lane (including the sentinel padding), the packed
     * state array, both bitmaps, and the replacement stamp lane.
     * O(blocks); test and debug hook.
     */
    bool shadowCoherent() const;

    /** Vector ISA the tag scans were compiled for. */
    static const char *simdIsa() { return simd::isaName(); }

    // --- set-dueling sample counters ---
    // Tags records where duel cost events land; what a set's role
    // means (leader/follower) and how samples move PSEL belong to
    // the PolicyEngine. Counters saturate and reset with the tags.

    /** Record one duel cost event against @p set. */
    void
    bumpDuelSample(unsigned set)
    {
        auto &c = duelSamples_[set];
        if (c < UINT16_MAX)
            ++c;
    }

    /** Cost events recorded against @p set this run. */
    std::uint16_t duelSamples(unsigned set) const
    {
        return duelSamples_[set];
    }

  private:
    /** Address-lane sentinel for non-present ways; never line-
     *  aligned (line size >= 2), so it can't match a lookup. */
    static constexpr Addr kNoAddr = ~Addr{0};

    std::size_t
    blockIndex(const CacheBlk *blk) const
    {
        return static_cast<std::size_t>(blk - blocks_.data());
    }

    /** Set way @p i's valid/busy bitmap bits for @p state. */
    void
    setWayBits(std::size_t i, BlkState state)
    {
        const unsigned set = static_cast<unsigned>(i / assoc_);
        const std::uint64_t bit = 1ULL << (i % assoc_);
        validBits_[set] = (state == BlkState::valid ||
                           state == BlkState::dirty)
                              ? validBits_[set] | bit
                              : validBits_[set] & ~bit;
        busyBits_[set] = state == BlkState::busy
                             ? busyBits_[set] | bit
                             : busyBits_[set] & ~bit;
    }

    unsigned numSets_;
    unsigned assoc_;
    unsigned lineSize_;
    Addr lineMask_;
    unsigned setShift_;
    /** All ways of one set, as a bitmap word. */
    std::uint64_t wayMask_;
    ReplKind replKind_;

    /** Per-block metadata (the external currency). */
    std::vector<CacheBlk> blocks_;
    // --- SoA mirrors (see file comment for the coherence rule) ---
    std::vector<Addr> addrs_; ///< + simd::kLanePad sentinel lanes
    std::vector<std::uint8_t> states_;
    std::vector<std::uint64_t> validBits_;
    std::vector<std::uint64_t> busyBits_;
    std::vector<std::uint64_t> replStamps_;

    std::vector<std::uint16_t> duelSamples_;
    std::unique_ptr<ReplPolicy> repl_;
    std::uint64_t stamp_ = 0;
    /** Victim candidate buffer: assoc_ slots, allocated once. */
    std::unique_ptr<CacheBlk *[]> scratch_;
};

} // namespace migc

#endif // MIGC_CACHE_TAGS_HH
