/**
 * @file
 * Set-associative tag store.
 */

#ifndef MIGC_CACHE_TAGS_HH
#define MIGC_CACHE_TAGS_HH

#include <functional>
#include <memory>
#include <vector>

#include "cache/cache_blk.hh"
#include "cache/repl_policy.hh"
#include "sim/types.hh"

namespace migc
{

class Tags
{
  public:
    /**
     * @param interleave_bits low line-address bits to strip from the
     *        set index. A bank of an N-way banked cache only ever
     *        sees lines whose low log2(N) line bits equal its bank
     *        id, so those bits must not feed the set index or only
     *        1/N of the sets would ever be used.
     */
    Tags(std::uint64_t size_bytes, unsigned assoc, unsigned line_size,
         ReplKind repl, std::uint64_t seed = 1,
         unsigned interleave_bits = 0);

    unsigned numSets() const { return numSets_; }

    unsigned assoc() const { return assoc_; }

    unsigned lineSize() const { return lineSize_; }

    Addr lineAlign(Addr addr) const { return addr & ~lineMask_; }

    unsigned setIndex(Addr addr) const;

    /** Find the block holding @p addr, or nullptr (any state). */
    CacheBlk *findBlock(Addr addr);

    /** Busy (fill-pending) ways in @p addr's set; feeds the adaptive
     *  occupancy-bypass policy. */
    unsigned busyWays(Addr addr);

    /**
     * Choose a victim way in @p addr's set: an invalid block if one
     * exists, else the replacement policy's pick among non-busy
     * blocks.
     * @return nullptr when every way is busy (allocation must block
     *         or bypass - the paper's Section VI.C.1 stall source).
     */
    CacheBlk *findVictim(Addr addr);

    /** Record a demand access to @p blk for replacement state. */
    void touch(CacheBlk *blk);

    /** Install @p addr into @p blk in @p state. */
    void insert(CacheBlk *blk, Addr addr, BlkState state, Addr insert_pc);

    /**
     * Self-invalidate every clean valid block (kernel-boundary
     * action, paper Section III). Dirty and busy blocks survive:
     * dirty data is only removed by a system-scope flush.
     * @return count invalidated.
     */
    std::uint64_t invalidateClean();

    /** Visit every dirty block (order: set-major, way-minor). */
    void forEachDirty(const std::function<void(CacheBlk &)> &fn);

    /** Visit all blocks (tests / introspection). */
    void forEach(const std::function<void(CacheBlk &)> &fn);

    /** Count blocks in a given state (tests / stats). */
    std::uint64_t countState(BlkState state) const;

    /**
     * Invalidate every block and restart the replacement state
     * (stamps, RNG) as if freshly constructed with @p seed. Keeps
     * the block and scratch storage allocated (System::reset()).
     */
    void reset(std::uint64_t seed);

    // --- set-dueling sample counters ---
    // Tags records where duel cost events land; what a set's role
    // means (leader/follower) and how samples move PSEL belong to
    // the PolicyEngine. Counters saturate and reset with the tags.

    /** Record one duel cost event against @p set. */
    void
    bumpDuelSample(unsigned set)
    {
        auto &c = duelSamples_[set];
        if (c < UINT16_MAX)
            ++c;
    }

    /** Cost events recorded against @p set this run. */
    std::uint16_t duelSamples(unsigned set) const
    {
        return duelSamples_[set];
    }

  private:
    /** First block of the set holding @p addr. */
    CacheBlk *
    setBase(Addr addr)
    {
        return &blocks_[static_cast<std::size_t>(setIndex(addr)) *
                        assoc_];
    }

    unsigned numSets_;
    unsigned assoc_;
    unsigned lineSize_;
    Addr lineMask_;
    unsigned setShift_;
    std::vector<CacheBlk> blocks_;
    std::vector<std::uint16_t> duelSamples_;
    std::unique_ptr<ReplPolicy> repl_;
    std::uint64_t stamp_ = 0;
    /** Victim candidate buffer: assoc_ slots, allocated once. */
    std::unique_ptr<CacheBlk *[]> scratch_;
};

} // namespace migc

#endif // MIGC_CACHE_TAGS_HH
