/**
 * @file
 * Miss Status Holding Registers: track in-flight line fills and
 * coalesce additional requests onto them.
 */

#ifndef MIGC_CACHE_MSHR_HH
#define MIGC_CACHE_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/packet.hh"
#include "sim/types.hh"

namespace migc
{

struct CacheBlk;

/** One in-flight fill and the requests waiting on it. */
struct Mshr
{
    Addr lineAddr = 0;

    /** The block reserved (busy) for this fill. */
    CacheBlk *blk = nullptr;

    /** The downstream fill packet's id (owned by the cache). */
    std::uint64_t fillPktId = 0;

    /** Requests to complete when the fill returns. */
    std::vector<PacketPtr> targets;

    /** True once any coalesced target is a store (fill -> dirty). */
    bool hasStoreTarget = false;
};

/** Fixed-capacity MSHR file keyed by line address. */
class MshrFile
{
  public:
    MshrFile(std::size_t capacity, std::size_t max_targets);

    bool full() const { return entries_.size() >= capacity_; }

    std::size_t size() const { return entries_.size(); }

    std::size_t capacity() const { return capacity_; }

    /** Find the MSHR covering @p line_addr, or nullptr. */
    Mshr *find(Addr line_addr);

    /**
     * Allocate an MSHR for @p line_addr (must not exist; file must
     * not be full).
     */
    Mshr &allocate(Addr line_addr, CacheBlk *blk,
                   std::uint64_t fill_pkt_id);

    /** True if another target can coalesce onto @p mshr. */
    bool
    canCoalesce(const Mshr &mshr) const
    {
        return mshr.targets.size() < maxTargets_;
    }

    /** Release @p line_addr's MSHR. */
    void deallocate(Addr line_addr);

    /** Drop every entry (System::reset(); file is normally empty). */
    void clear() { entries_.clear(); }

  private:
    std::size_t capacity_;
    std::size_t maxTargets_;
    std::unordered_map<Addr, Mshr> entries_;
};

} // namespace migc

#endif // MIGC_CACHE_MSHR_HH
