#include "cache/mshr.hh"

#include "sim/logging.hh"

namespace migc
{

MshrFile::MshrFile(std::size_t capacity, std::size_t max_targets)
    : capacity_(capacity), maxTargets_(max_targets)
{
    fatal_if(capacity == 0, "MSHR file needs at least one entry");
    fatal_if(max_targets == 0, "MSHRs need at least one target slot");
    entries_.reserve(capacity);
}

Mshr *
MshrFile::find(Addr line_addr)
{
    auto it = entries_.find(line_addr);
    return it == entries_.end() ? nullptr : &it->second;
}

Mshr &
MshrFile::allocate(Addr line_addr, CacheBlk *blk,
                   std::uint64_t fill_pkt_id)
{
    panic_if(full(), "allocating in a full MSHR file");
    panic_if(entries_.contains(line_addr),
             "duplicate MSHR for line %#llx",
             static_cast<unsigned long long>(line_addr));
    auto [it, ok] = entries_.emplace(line_addr, Mshr{});
    (void)ok;
    Mshr &m = it->second;
    m.lineAddr = line_addr;
    m.blk = blk;
    m.fillPktId = fill_pkt_id;
    return m;
}

void
MshrFile::deallocate(Addr line_addr)
{
    auto erased = entries_.erase(line_addr);
    panic_if(erased == 0, "deallocating unknown MSHR for line %#llx",
             static_cast<unsigned long long>(line_addr));
}

} // namespace migc
