#include "cache/dbi.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace migc
{

DirtyBlockIndex::DirtyBlockIndex(std::size_t capacity)
    : capacity_(capacity)
{
    fatal_if(capacity == 0, "DBI needs at least one row entry");
}

void
DirtyBlockIndex::touchLru(std::uint64_t row_id, RowEntry &entry)
{
    lru_.erase(entry.lruIt);
    lru_.push_front(row_id);
    entry.lruIt = lru_.begin();
}

std::vector<Addr>
DirtyBlockIndex::add(std::uint64_t row_id, Addr line_addr)
{
    ++statAdds_;
    std::vector<Addr> spilled;

    auto it = rows_.find(row_id);
    if (it != rows_.end()) {
        auto &lines = it->second.lines;
        if (std::find(lines.begin(), lines.end(), line_addr) ==
            lines.end()) {
            lines.push_back(line_addr);
        }
        touchLru(row_id, it->second);
        return spilled;
    }

    if (rows_.size() >= capacity_) {
        // Evict the least-recently-updated row; its dirty lines must
        // be rinsed by the caller to keep cache and index coherent.
        std::uint64_t victim = lru_.back();
        lru_.pop_back();
        auto vit = rows_.find(victim);
        panic_if(vit == rows_.end(), "DBI LRU list out of sync");
        spilled = std::move(vit->second.lines);
        rows_.erase(vit);
        ++statCapacityEvictions_;
    }

    lru_.push_front(row_id);
    RowEntry entry;
    entry.lines.push_back(line_addr);
    entry.lruIt = lru_.begin();
    rows_.emplace(row_id, std::move(entry));
    return spilled;
}

void
DirtyBlockIndex::remove(std::uint64_t row_id, Addr line_addr)
{
    auto it = rows_.find(row_id);
    if (it == rows_.end())
        return;
    auto &lines = it->second.lines;
    auto lit = std::find(lines.begin(), lines.end(), line_addr);
    if (lit == lines.end())
        return;
    ++statRemoves_;
    lines.erase(lit);
    if (lines.empty()) {
        lru_.erase(it->second.lruIt);
        rows_.erase(it);
    }
}

std::vector<Addr>
DirtyBlockIndex::takeRow(std::uint64_t row_id, Addr except_line)
{
    auto it = rows_.find(row_id);
    if (it == rows_.end())
        return {};
    ++statRowTakes_;
    std::vector<Addr> lines = std::move(it->second.lines);
    lru_.erase(it->second.lruIt);
    rows_.erase(it);
    std::erase(lines, except_line);
    return lines;
}

std::size_t
DirtyBlockIndex::rowPopulation(std::uint64_t row_id) const
{
    auto it = rows_.find(row_id);
    return it == rows_.end() ? 0 : it->second.lines.size();
}

void
DirtyBlockIndex::reset()
{
    rows_.clear();
    lru_.clear();
    statAdds_.reset();
    statRemoves_.reset();
    statRowTakes_.reset();
    statCapacityEvictions_.reset();
}

void
DirtyBlockIndex::regStats(StatGroup &group)
{
    group.addScalar("adds", "dirty lines recorded", &statAdds_);
    group.addScalar("removes", "lines cleaned individually",
                    &statRemoves_);
    group.addScalar("row_takes", "rows rinsed on dirty eviction",
                    &statRowTakes_);
    group.addScalar("capacity_evictions", "rows rinsed on DBI overflow",
                    &statCapacityEvictions_);
}

} // namespace migc
