#include "cache/tags.hh"

#include <algorithm>

#include "mem/addr_utils.hh"

namespace migc
{

Tags::Tags(std::uint64_t size_bytes, unsigned assoc, unsigned line_size,
           ReplKind repl, std::uint64_t seed, unsigned interleave_bits)
    : assoc_(assoc), lineSize_(line_size),
      lineMask_(line_size - 1), replKind_(repl),
      repl_(ReplPolicy::create(repl, seed))
{
    fatal_if(!isPowerOf2(line_size), "line size must be 2^n");
    // line size >= 2 keeps the kNoAddr lane sentinel un-matchable
    // (it is never line-aligned).
    fatal_if(line_size < 2, "line size must be >= 2");
    fatal_if(assoc == 0, "associativity must be >= 1");
    fatal_if(assoc > 64, "associativity must fit a 64-bit set bitmap");
    fatal_if(size_bytes % (static_cast<std::uint64_t>(assoc) * line_size)
             != 0, "cache size must divide evenly into sets");

    numSets_ = static_cast<unsigned>(size_bytes / assoc / line_size);
    fatal_if(!isPowerOf2(numSets_), "set count must be 2^n");

    setShift_ = floorLog2(line_size) + interleave_bits;
    wayMask_ = assoc_ == 64 ? ~0ULL : (1ULL << assoc_) - 1;

    const std::size_t n = static_cast<std::size_t>(numSets_) * assoc_;
    blocks_.resize(n);
    addrs_.assign(n + simd::kLanePad, kNoAddr);
    states_.assign(n, static_cast<std::uint8_t>(BlkState::invalid));
    validBits_.assign(numSets_, 0);
    busyBits_.assign(numSets_, 0);
    replStamps_.assign(n, 0);
    duelSamples_.assign(numSets_, 0);
    scratch_ = std::make_unique<CacheBlk *[]>(assoc_);
}

CacheBlk *
Tags::findVictim(Addr addr)
{
    const unsigned set = setIndex(addr);
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    const std::uint64_t present = validBits_[set] | busyBits_[set];

    // An invalid way wins outright; the lowest one matches the
    // scalar walk's first-invalid pick.
    if (present != wayMask_) {
        return &blocks_[base + static_cast<unsigned>(std::countr_zero(
                                   ~present & wayMask_))];
    }

    const std::uint64_t cands = validBits_[set]; // present, not busy
    if (cands == 0)
        return nullptr; // every way busy: allocation would block

    if (cands == wayMask_ && replKind_ != ReplKind::random) {
        // Full set, nothing busy, stamp-ordered policy: the policy
        // pick is just the minimum replacement stamp, so min-scan
        // the contiguous stamp lane instead of gathering candidate
        // pointers. Stamps are unique (monotonic ++stamp_), so this
        // selects exactly the block ReplPolicy::victim would.
        const std::uint64_t *stamps = &replStamps_[base];
        unsigned best = 0;
        for (unsigned w = 1; w < assoc_; ++w) {
            if (stamps[w] < stamps[best])
                best = w;
        }
        return &blocks_[base + best];
    }

    // General path: gather candidates in ascending way order (the
    // order the scalar walk produced — the random policy's single
    // RNG draw indexes it) and defer to the policy.
    CacheBlk **cand = scratch_.get();
    for (std::uint64_t m = cands; m;) {
        const unsigned w = static_cast<unsigned>(std::countr_zero(m));
        m &= m - 1;
        *cand++ = &blocks_[base + w];
    }
    const auto count = static_cast<std::size_t>(cand - scratch_.get());
    return scratch_[repl_->victim(scratch_.get(), count)];
}

std::uint64_t
Tags::invalidateClean()
{
    std::uint64_t count = 0;
    simd::forEachByteEq(
        states_.data(), states_.size(),
        static_cast<std::uint8_t>(BlkState::valid), [&](std::size_t i) {
            blocks_[i].invalidate();
            addrs_[i] = kNoAddr;
            states_[i] = static_cast<std::uint8_t>(BlkState::invalid);
            setWayBits(i, BlkState::invalid);
            ++count;
        });
    return count;
}

std::uint64_t
Tags::countState(BlkState state) const
{
    return simd::countByteEq(states_.data(), states_.size(),
                             static_cast<std::uint8_t>(state));
}

void
Tags::reset(std::uint64_t seed)
{
    for (auto &blk : blocks_)
        blk = CacheBlk{};
    std::fill(addrs_.begin(), addrs_.end(), kNoAddr);
    std::fill(states_.begin(), states_.end(),
              static_cast<std::uint8_t>(BlkState::invalid));
    std::fill(validBits_.begin(), validBits_.end(), 0);
    std::fill(busyBits_.begin(), busyBits_.end(), 0);
    std::fill(replStamps_.begin(), replStamps_.end(), 0);
    std::fill(duelSamples_.begin(), duelSamples_.end(), 0);
    stamp_ = 0;
    repl_->reset(seed);
}

bool
Tags::shadowCoherent() const
{
    const std::size_t n = blocks_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const CacheBlk &blk = blocks_[i];
        const bool resident = blk.state != BlkState::invalid;
        if (addrs_[i] != (resident ? blk.addr : kNoAddr))
            return false;
        if (states_[i] != static_cast<std::uint8_t>(blk.state))
            return false;
        const unsigned set = static_cast<unsigned>(i / assoc_);
        const std::uint64_t bit = 1ULL << (i % assoc_);
        if (((validBits_[set] & bit) != 0) != blk.isValid())
            return false;
        if (((busyBits_[set] & bit) != 0) != blk.isBusy())
            return false;
        if (resident) {
            const std::uint64_t want = replKind_ == ReplKind::fifo
                                           ? blk.insertStamp
                                           : blk.lastTouch;
            if (replStamps_[i] != want)
                return false;
        }
    }
    // The over-read padding must keep its sentinel fill.
    for (std::size_t i = n; i < addrs_.size(); ++i) {
        if (addrs_[i] != kNoAddr)
            return false;
    }
    return true;
}

} // namespace migc
