#include "cache/tags.hh"

#include <algorithm>

#include "mem/addr_utils.hh"
#include "sim/logging.hh"

namespace migc
{

Tags::Tags(std::uint64_t size_bytes, unsigned assoc, unsigned line_size,
           ReplKind repl, std::uint64_t seed, unsigned interleave_bits)
    : assoc_(assoc), lineSize_(line_size),
      lineMask_(line_size - 1), repl_(ReplPolicy::create(repl, seed))
{
    fatal_if(!isPowerOf2(line_size), "line size must be 2^n");
    fatal_if(assoc == 0, "associativity must be >= 1");
    fatal_if(size_bytes % (static_cast<std::uint64_t>(assoc) * line_size)
             != 0, "cache size must divide evenly into sets");

    numSets_ = static_cast<unsigned>(size_bytes / assoc / line_size);
    fatal_if(!isPowerOf2(numSets_), "set count must be 2^n");

    setShift_ = floorLog2(line_size) + interleave_bits;
    blocks_.resize(static_cast<std::size_t>(numSets_) * assoc_);
    duelSamples_.assign(numSets_, 0);
    scratch_ = std::make_unique<CacheBlk *[]>(assoc_);
}

unsigned
Tags::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr >> setShift_) & (numSets_ - 1));
}

CacheBlk *
Tags::findBlock(Addr addr)
{
    // Flat pointer walk over the set: the tag compare leads so the
    // common miss-on-way case is a single well-predicted branch per
    // way (state only needs checking on a tag match).
    const Addr line = lineAlign(addr);
    CacheBlk *blk = setBase(addr);
    CacheBlk *const end = blk + assoc_;
    for (; blk != end; ++blk) {
        if (blk->addr == line && blk->state != BlkState::invalid)
            return blk;
    }
    return nullptr;
}

unsigned
Tags::busyWays(Addr addr)
{
    CacheBlk *blk = setBase(addr);
    CacheBlk *const end = blk + assoc_;
    unsigned busy = 0;
    for (; blk != end; ++blk)
        busy += blk->isBusy();
    return busy;
}

CacheBlk *
Tags::findVictim(Addr addr)
{
    CacheBlk *blk = setBase(addr);
    CacheBlk *const end = blk + assoc_;
    CacheBlk **cand = scratch_.get();
    for (; blk != end; ++blk) {
        if (blk->state == BlkState::invalid)
            return blk;
        if (!blk->isBusy())
            *cand++ = blk;
    }
    const auto count =
        static_cast<std::size_t>(cand - scratch_.get());
    if (count == 0)
        return nullptr; // every way busy: allocation would block
    return scratch_[repl_->victim(scratch_.get(), count)];
}

void
Tags::touch(CacheBlk *blk)
{
    blk->lastTouch = ++stamp_;
}

void
Tags::insert(CacheBlk *blk, Addr addr, BlkState state, Addr insert_pc)
{
    panic_if(blk->isBusy(), "inserting over a busy block");
    blk->addr = lineAlign(addr);
    blk->state = state;
    blk->insertPc = insert_pc;
    blk->reused = false;
    blk->insertStamp = ++stamp_;
    blk->lastTouch = stamp_;
}

std::uint64_t
Tags::invalidateClean()
{
    std::uint64_t count = 0;
    for (auto &blk : blocks_) {
        if (blk.state == BlkState::valid) {
            blk.invalidate();
            ++count;
        }
    }
    return count;
}

void
Tags::forEachDirty(const std::function<void(CacheBlk &)> &fn)
{
    for (auto &blk : blocks_) {
        if (blk.isDirty())
            fn(blk);
    }
}

void
Tags::forEach(const std::function<void(CacheBlk &)> &fn)
{
    for (auto &blk : blocks_)
        fn(blk);
}

void
Tags::reset(std::uint64_t seed)
{
    for (auto &blk : blocks_)
        blk = CacheBlk{};
    std::fill(duelSamples_.begin(), duelSamples_.end(), 0);
    stamp_ = 0;
    repl_->reset(seed);
}

std::uint64_t
Tags::countState(BlkState state) const
{
    std::uint64_t count = 0;
    for (const auto &blk : blocks_) {
        if (blk.state == state)
            ++count;
    }
    return count;
}

} // namespace migc
