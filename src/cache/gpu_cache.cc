#include "cache/gpu_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace migc
{

GpuCache::GpuCache(const GpuCacheConfig &cfg, EventQueue &eq,
                   PacketPool &pool, const AddressMap *addr_map,
                   ReusePredictor *predictor, PolicyEngine *engine,
                   CacheLevel level)
    : SimObject(cfg.name, eq, ClockDomain(cfg.clockPeriod)), cfg_(cfg),
      pktPool_(pool), addrMap_(addr_map), predictor_(predictor),
      engine_(engine), level_(level),
      tags_(cfg.size, cfg.assoc, cfg.lineSize, cfg.repl, cfg.seed,
            cfg.bankInterleaveBits),
      mshrs_(cfg.mshrs, cfg.targetsPerMshr),
      cpuPort_(cfg.name + ".cpu_side", *this),
      memPort_(cfg.name + ".mem_side", *this),
      respQueue_(eq, cpuPort_, cfg.name + ".respq"),
      memQueue_(eq, memPort_, cfg.name + ".memq", cfg.memQueueDepth),
      wbDrainEvent_([this] { drainWritebacks(); }, cfg.name + ".wbdrain",
                    Event::defaultPriority, EventCategory::cache),
      retryEvent_(
          [this] {
              if (retryNeeded_) {
                  retryNeeded_ = false;
                  cpuPort_.sendReqRetry();
              }
          },
          cfg.name + ".retry", Event::defaultPriority,
          EventCategory::cache)
{
    fatal_if(cfg.rinsing && addr_map == nullptr,
             "cache rinsing requires a DRAM address map for row ids");
    // The DBI is always built (it is tiny) and only consulted when
    // cfg_.rinsing is set, so reset() can flip rinsing on or off
    // without allocating or invalidating registered stats.
    dbi_ = std::make_unique<DirtyBlockIndex>(cfg.dbiRows);

    memQueue_.onSpaceFreed([this] {
        if (!wbQueue_.empty() && !wbDrainEvent_.scheduled())
            eventQueue().schedule(&wbDrainEvent_, curTick());
        maybeSendRetry();
    });
}

GpuCache::~GpuCache() = default;

// ---------------------------------------------------------------------
// Flow control
// ---------------------------------------------------------------------

bool
GpuCache::reject(RejectReason reason, bool counted_stall)
{
    ++statRejects_;
    switch (reason) {
      case RejectReason::port:
        ++statRejectPort_;
        break;
      case RejectReason::mshrFull:
      case RejectReason::targetsFull:
        ++statRejectMshr_;
        break;
      case RejectReason::bypassFull:
      case RejectReason::memQueueFull:
        ++statRejectMemq_;
        break;
      case RejectReason::allocBlocked:
      case RejectReason::writeBufFull:
        ++statAllocBlockedRejects_;
        break;
    }

    if (counted_stall) {
        if (!stalled_) {
            stalled_ = true;
            stallStart_ = curTick();
        }
    } else if (!backpressured_) {
        backpressured_ = true;
        backpressureStart_ = curTick();
    }
    retryNeeded_ = true;

    // Port-occupancy rejections resolve by themselves at a known
    // tick; resource rejections resolve when the resource frees.
    if (reason == RejectReason::port && !retryEvent_.scheduled())
        eventQueue().schedule(&retryEvent_,
                              std::max(nextPortFree_, curTick() + 1));
    return false;
}

void
GpuCache::accepted()
{
    if (stalled_) {
        statStallCycles_ +=
            static_cast<double>((curTick() - stallStart_) /
                                clockDomain().period());
        stalled_ = false;
    }
    if (backpressured_) {
        statBackpressureCycles_ +=
            static_cast<double>((curTick() - backpressureStart_) /
                                clockDomain().period());
        backpressured_ = false;
    }
}

void
GpuCache::maybeSendRetry()
{
    if (retryNeeded_ && !retryEvent_.scheduled()) {
        eventQueue().schedule(&retryEvent_,
                              std::max(nextPortFree_, curTick()));
    }
}

void
GpuCache::occupyPort()
{
    nextPortFree_ = clockEdge(Cycles(1));
}

// ---------------------------------------------------------------------
// Request paths
// ---------------------------------------------------------------------

bool
GpuCache::storeAllocates(Addr addr)
{
    if (engine_ == nullptr || !engine_->duelingActive(level_))
        return true;
    return engine_->cacheStore(
        engine_->duelRole(tags_.setIndex(addr), tags_.numSets()));
}

bool
GpuCache::occupancyPreBypass(PacketPtr pkt)
{
    return engine_ != nullptr && engine_->occupancyBypassActive() &&
           engine_->occupancyBypass(tags_.busyWays(pkt->addr),
                                    cfg_.assoc);
}

void
GpuCache::noteDuelCost(Addr addr, DuelRole charged_role)
{
    if (engine_ == nullptr || !engine_->duelingActive(level_))
        return;
    unsigned set = tags_.setIndex(addr);
    if (engine_->duelRole(set, tags_.numSets()) != charged_role)
        return;
    tags_.bumpDuelSample(set);
    if (charged_role == DuelRole::leaderR)
        engine_->noteDuelBypassStore();
    else
        engine_->noteDuelWriteback();
}

bool
GpuCache::handleRequest(PacketPtr pkt)
{
    panic_if(pkt->addr != tags_.lineAlign(pkt->addr),
             "unaligned cache request %s", pkt->print().c_str());

    bool cached_path = false;
    switch (pkt->cmd) {
      case MemCmd::ReadReq:
        cached_path = cfg_.cacheLoads && !pkt->hasFlag(pktFlagBypass);
        break;
      case MemCmd::WriteReq:
        cached_path = cfg_.cacheStores &&
                      !pkt->hasFlag(pktFlagBypass) &&
                      storeAllocates(pkt->addr);
        break;
      default:
        panic("unexpected request %s at cache %s", pkt->print().c_str(),
              name().c_str());
    }

    if (curTick() < nextPortFree_)
        return reject(RejectReason::port, cached_path);

    bool ok;
    if (pkt->cmd == MemCmd::ReadReq)
        ok = cached_path ? cachedRead(pkt) : bypassRead(pkt);
    else
        ok = cached_path ? cachedWrite(pkt) : bypassWrite(pkt);

    if (ok) {
        occupyPort();
        accepted();
    }
    return ok;
}

bool
GpuCache::cachedRead(PacketPtr pkt)
{
    CacheBlk *blk = tags_.findBlock(pkt->addr);

    if (blk && blk->isValid()) {
        ++statHits_;
        tags_.touch(blk);
        if (!blk->reused) {
            blk->reused = true;
            if (predictor_)
                predictor_->trainReuse(blk->insertPc);
        }
        pkt->makeResponse();
        respQueue_.push(pkt, clockEdge(cfg_.lookupLatency));
        return true;
    }

    if (blk && blk->isBusy()) {
        Mshr *mshr = mshrs_.find(pkt->addr);
        panic_if(mshr == nullptr, "busy block without MSHR");
        if (!mshrs_.canCoalesce(*mshr))
            return reject(RejectReason::targetsFull, true);
        ++statMshrCoalesced_;
        mshr->targets.push_back(pkt);
        return true;
    }

    // Demand miss.
    if (predictor_ && !predictor_->shouldCache(pkt->pc, pkt->addr)) {
        ++statPredictorBypasses_;
        return bypassRead(pkt);
    }

    // Adaptive allocation bypass: convert to a bypass before the set
    // congests, not only once allocation actually blocks below.
    if (occupancyPreBypass(pkt)) {
        ++statAllocBypassed_;
        pkt->setFlag(pktFlagAllocBypassed);
        return bypassRead(pkt);
    }

    if (mshrs_.full())
        return reject(RejectReason::mshrFull, true);
    if (memQueue_.full())
        return reject(RejectReason::memQueueFull, true);

    CacheBlk *victim = tags_.findVictim(pkt->addr);
    if (victim == nullptr) {
        // Every way in the set holds a pending fill: the blocking
        // allocation case of Section VI.C.1.
        if (cfg_.allocationBypass) {
            ++statAllocBypassed_;
            pkt->setFlag(pktFlagAllocBypassed);
            return bypassRead(pkt);
        }
        return reject(RejectReason::allocBlocked, true);
    }

    if (victim->isDirty() && wbQueue_.size() >= cfg_.writeBufDepth) {
        if (cfg_.allocationBypass) {
            ++statAllocBypassed_;
            pkt->setFlag(pktFlagAllocBypassed);
            return bypassRead(pkt);
        }
        return reject(RejectReason::writeBufFull, true);
    }

    ++statMisses_;
    if (victim->isValid())
        evictBlock(victim);

    tags_.insert(victim, pkt->addr, BlkState::busy, pkt->pc);

    Packet *fill = pktPool_.alloc(MemCmd::ReadReq, pkt->addr,
                                  cfg_.lineSize, curTick());
    fill->pc = pkt->pc;
    fill->cuId = pkt->cuId;

    Mshr &mshr = mshrs_.allocate(pkt->addr, victim, fill->id);
    mshr.targets.push_back(pkt);

    memQueue_.push(fill, clockEdge(cfg_.lookupLatency));
    return true;
}

bool
GpuCache::cachedWrite(PacketPtr pkt)
{
    CacheBlk *blk = tags_.findBlock(pkt->addr);

    if (blk && blk->isValid()) {
        ++statHits_;
        ++statStoresAbsorbed_;
        tags_.touch(blk);
        if (!blk->reused) {
            blk->reused = true;
            if (predictor_)
                predictor_->trainReuse(blk->insertPc);
        }
        if (!blk->isDirty()) {
            tags_.setState(blk, BlkState::dirty);
            if (cfg_.rinsing) {
                auto spilled = dbi_->add(addrMap_->rowId(blk->addr),
                                         blk->addr);
                for (Addr line : spilled) {
                    CacheBlk *sb = tags_.findBlock(line);
                    if (sb && sb->isDirty()) {
                        scheduleWriteback(line, pktFlagRinse);
                        tags_.setState(sb, BlkState::valid);
                    }
                }
            }
        }
        pkt->makeResponse();
        respQueue_.push(pkt, clockEdge(cfg_.lookupLatency));
        return true;
    }

    if (blk && blk->isBusy()) {
        Mshr *mshr = mshrs_.find(pkt->addr);
        panic_if(mshr == nullptr, "busy block without MSHR");
        if (!mshrs_.canCoalesce(*mshr))
            return reject(RejectReason::targetsFull, true);
        ++statMshrCoalesced_;
        mshr->hasStoreTarget = true;
        mshr->targets.push_back(pkt);
        return true;
    }

    // Store miss: write-validate (allocate dirty, no fetch).
    if (predictor_ && !predictor_->shouldCache(pkt->pc, pkt->addr)) {
        ++statPredictorBypasses_;
        return bypassWrite(pkt);
    }

    if (occupancyPreBypass(pkt)) {
        ++statAllocBypassed_;
        pkt->setFlag(pktFlagAllocBypassed);
        return bypassWrite(pkt);
    }

    CacheBlk *victim = tags_.findVictim(pkt->addr);
    if (victim == nullptr) {
        if (cfg_.allocationBypass) {
            ++statAllocBypassed_;
            pkt->setFlag(pktFlagAllocBypassed);
            return bypassWrite(pkt);
        }
        return reject(RejectReason::allocBlocked, true);
    }

    if (victim->isDirty() && wbQueue_.size() >= cfg_.writeBufDepth) {
        if (cfg_.allocationBypass) {
            ++statAllocBypassed_;
            pkt->setFlag(pktFlagAllocBypassed);
            return bypassWrite(pkt);
        }
        return reject(RejectReason::writeBufFull, true);
    }

    ++statMisses_;
    ++statStoresAbsorbed_;
    if (victim->isValid())
        evictBlock(victim);

    tags_.insert(victim, pkt->addr, BlkState::dirty, pkt->pc);
    if (cfg_.rinsing) {
        auto spilled = dbi_->add(addrMap_->rowId(pkt->addr), pkt->addr);
        for (Addr line : spilled) {
            CacheBlk *sb = tags_.findBlock(line);
            if (sb && sb->isDirty()) {
                scheduleWriteback(line, pktFlagRinse);
                tags_.setState(sb, BlkState::valid);
            }
        }
    }

    pkt->makeResponse();
    respQueue_.push(pkt, clockEdge(cfg_.lookupLatency));
    return true;
}

bool
GpuCache::bypassRead(PacketPtr pkt)
{
    // Bypass requests still probe the tags when this cache can hold
    // data (required for correctness under mixed policies); under a
    // fully uncached policy the tag array is never built up, so the
    // probe trivially misses.
    if (cfg_.cacheLoads || cfg_.cacheStores) {
        CacheBlk *blk = tags_.findBlock(pkt->addr);
        if (blk && blk->isValid()) {
            ++statHits_;
            tags_.touch(blk);
            if (!blk->reused) {
                blk->reused = true;
                if (predictor_)
                    predictor_->trainReuse(blk->insertPc);
            }
            pkt->makeResponse();
            respQueue_.push(pkt, clockEdge(cfg_.lookupLatency));
            return true;
        }
    }

    auto it = bypassPending_.find(pkt->addr);
    if (it != bypassPending_.end()) {
        // Coalesce onto the in-flight bypass request (Section III).
        ++statBypassCoalesced_;
        it->second.targets.push_back(pkt);
        return true;
    }

    // A bypass request never queries the cache arrays, so waiting for
    // a coalescer slot or queue space is memory back-pressure, not a
    // cache stall in the paper's Section VI.C.1 sense.
    if (bypassPending_.size() >= cfg_.bypassEntries)
        return reject(RejectReason::bypassFull, false);
    if (memQueue_.full())
        return reject(RejectReason::memQueueFull, false);

    ++statBypassReads_;
    Packet *fwd = pktPool_.alloc(MemCmd::ReadReq, pkt->addr,
                                 cfg_.lineSize, curTick());
    fwd->pc = pkt->pc;
    fwd->cuId = pkt->cuId;
    fwd->flags = pkt->flags;
    fwd->setFlag(pktFlagBypass);

    BypassEntry entry;
    entry.fwdPktId = fwd->id;
    entry.targets.push_back(pkt);
    bypassPending_.emplace(pkt->addr, std::move(entry));

    memQueue_.push(fwd, clockEdge(cfg_.bypassLatency));
    return true;
}

bool
GpuCache::bypassWrite(PacketPtr pkt)
{
    if (cfg_.cacheLoads || cfg_.cacheStores) {
        CacheBlk *blk = tags_.findBlock(pkt->addr);
        if (blk && blk->isDirty()) {
            // The line already holds newer coalesced store data;
            // absorb this store into it rather than racing it to
            // memory.
            ++statHits_;
            ++statStoresAbsorbed_;
            tags_.touch(blk);
            pkt->makeResponse();
            respQueue_.push(pkt, clockEdge(cfg_.lookupLatency));
            return true;
        }
        if (blk && blk->state == BlkState::valid) {
            // Write-through under a clean copy: invalidate it.
            tags_.invalidateBlock(blk);
            ++statInvalidations_;
        }
    }

    if (memQueue_.full())
        return reject(RejectReason::memQueueFull, false);

    ++statBypassWrites_;
    // A store bypassing a CacheR leader set is that constituency's
    // DRAM-write cost in the store-policy duel.
    noteDuelCost(pkt->addr, DuelRole::leaderR);
    // Forward the original packet; the ack routes back through us.
    memQueue_.push(pkt, clockEdge(cfg_.bypassLatency));
    return true;
}

// ---------------------------------------------------------------------
// Eviction and writeback machinery
// ---------------------------------------------------------------------

void
GpuCache::trainOnEviction(const CacheBlk &blk)
{
    if (predictor_ && !blk.reused)
        predictor_->trainNoReuse(blk.insertPc);
}

void
GpuCache::evictBlock(CacheBlk *blk)
{
    panic_if(!blk->isValid(), "evicting an invalid block");
    debug_log("%s: evict %#llx%s", name().c_str(),
              static_cast<unsigned long long>(blk->addr),
              blk->isDirty() ? " (dirty)" : "");

    if (blk->isDirty()) {
        scheduleWriteback(blk->addr, pktFlagNone);
        if (cfg_.rinsing) {
            std::uint64_t row = addrMap_->rowId(blk->addr);
            if (engine_ == nullptr ||
                engine_->rinseRow(dbi_->rowPopulation(row))) {
                // Rinse: push every other dirty line of this DRAM row
                // out with the victim so the controller sees row-
                // clustered writes (Section VII.B). Rinsed lines stay
                // cached clean.
                for (Addr line : dbi_->takeRow(row, blk->addr)) {
                    CacheBlk *rb = tags_.findBlock(line);
                    if (rb && rb->isDirty()) {
                        scheduleWriteback(line, pktFlagRinse);
                        tags_.setState(rb, BlkState::valid);
                    }
                }
            } else {
                // Dynamic threshold says the row is still too sparse
                // to drain: keep its other dirty lines cached and
                // only drop the evicted line from the index.
                ++statRinseDeferred_;
                dbi_->remove(row, blk->addr);
            }
        }
    }

    trainOnEviction(*blk);
    tags_.invalidateBlock(blk);
}

void
GpuCache::scheduleWriteback(Addr line_addr, std::uint32_t flags)
{
    ++statWritebacks_;
    if (flags & pktFlagRinse)
        ++statRinseWritebacks_;
    if (flags & pktFlagFlush)
        ++statFlushWritebacks_;
    // A writeback leaving a CacheRW leader set is that constituency's
    // DRAM-write cost in the store-policy duel.
    noteDuelCost(line_addr, DuelRole::leaderRW);

    wbQueue_.push_back(PendingWb{line_addr, flags});
    ++outstandingWbs_;
    if (!wbDrainEvent_.scheduled())
        eventQueue().schedule(&wbDrainEvent_, clockEdge(Cycles(1)));
}

void
GpuCache::drainWritebacks()
{
    while (!wbQueue_.empty() && !memQueue_.full()) {
        PendingWb wb = wbQueue_.front();
        wbQueue_.pop_front();
        Packet *pkt = pktPool_.alloc(MemCmd::WritebackDirty, wb.lineAddr,
                                     cfg_.lineSize, curTick());
        pkt->flags = wb.flags;
        memQueue_.push(pkt, curTick());
    }
    if (wbQueue_.size() < cfg_.writeBufDepth)
        maybeSendRetry();
}

void
GpuCache::checkFlushDone()
{
    if (flushDone_ && wbQueue_.empty() && outstandingWbs_ == 0) {
        auto done = std::move(flushDone_);
        flushDone_ = nullptr;
        done();
    }
}

// ---------------------------------------------------------------------
// Response paths
// ---------------------------------------------------------------------

void
GpuCache::handleResponse(PacketPtr pkt)
{
    switch (pkt->cmd) {
      case MemCmd::ReadResp: {
        Mshr *mshr = mshrs_.find(pkt->addr);
        if (mshr && mshr->fillPktId == pkt->id) {
            completeFill(pkt);
            return;
        }
        auto it = bypassPending_.find(pkt->addr);
        if (it != bypassPending_.end() &&
            it->second.fwdPktId == pkt->id) {
            completeBypassRead(pkt);
            return;
        }
        panic("orphan read response %s at %s", pkt->print().c_str(),
              name().c_str());
      }
      case MemCmd::WriteResp:
        // Ack for a store we forwarded on behalf of the requester.
        respQueue_.push(pkt, clockEdge(cfg_.bypassLatency));
        return;
      case MemCmd::WritebackResp:
        handleWritebackResp(pkt);
        return;
      default:
        panic("unexpected response %s at %s", pkt->print().c_str(),
              name().c_str());
    }
}

void
GpuCache::completeFill(PacketPtr fill_pkt)
{
    Addr line = fill_pkt->addr;
    Mshr *mshr = mshrs_.find(line);
    panic_if(mshr == nullptr, "fill without MSHR");
    debug_log("%s: fill %s (%zu targets)", name().c_str(),
              fill_pkt->print().c_str(), mshr->targets.size());
    CacheBlk *blk = mshr->blk;
    panic_if(!blk->isBusy(), "fill into a non-busy block");

    tags_.setState(blk, mshr->hasStoreTarget ? BlkState::dirty
                                             : BlkState::valid);
    if (blk->isDirty() && cfg_.rinsing) {
        auto spilled = dbi_->add(addrMap_->rowId(line), line);
        for (Addr spilled_line : spilled) {
            CacheBlk *sb = tags_.findBlock(spilled_line);
            if (sb && sb->isDirty()) {
                scheduleWriteback(spilled_line, pktFlagRinse);
                tags_.setState(sb, BlkState::valid);
            }
        }
    }

    // Coalesced targets beyond the first observed reuse of the line.
    if (mshr->targets.size() > 1 && !blk->reused) {
        blk->reused = true;
        if (predictor_)
            predictor_->trainReuse(blk->insertPc);
    }

    Tick ready = clockEdge(cfg_.responseLatency);
    for (PacketPtr target : mshr->targets) {
        if (target->cmd == MemCmd::WriteReq)
            ++statStoresAbsorbed_;
        target->makeResponse();
        respQueue_.push(target, ready);
    }

    mshrs_.deallocate(line);
    pktPool_.release(fill_pkt);
    maybeSendRetry();
}

void
GpuCache::completeBypassRead(PacketPtr fwd_pkt)
{
    auto it = bypassPending_.find(fwd_pkt->addr);
    panic_if(it == bypassPending_.end(), "bypass completion w/o entry");

    Tick ready = clockEdge(cfg_.bypassLatency);
    for (PacketPtr target : it->second.targets) {
        target->makeResponse();
        respQueue_.push(target, ready);
    }
    bypassPending_.erase(it);
    pktPool_.release(fwd_pkt);
    maybeSendRetry();
}

void
GpuCache::handleWritebackResp(PacketPtr pkt)
{
    panic_if(outstandingWbs_ == 0, "writeback ack without writeback");
    --outstandingWbs_;
    pktPool_.release(pkt);
    checkFlushDone();
    maybeSendRetry();
}

// ---------------------------------------------------------------------
// Synchronization operations
// ---------------------------------------------------------------------

std::uint64_t
GpuCache::invalidateClean()
{
    std::uint64_t n = tags_.invalidateClean();
    statInvalidations_ += static_cast<double>(n);
    return n;
}

void
GpuCache::flushDirty(std::function<void()> on_done)
{
    panic_if(flushDone_ != nullptr, "overlapping flushes");
    flushDone_ = std::move(on_done);

    tags_.forEachDirty([this](CacheBlk &blk) {
        scheduleWriteback(blk.addr, pktFlagFlush);
        if (cfg_.rinsing)
            dbi_->remove(addrMap_->rowId(blk.addr), blk.addr);
        tags_.setState(&blk, BlkState::valid);
    });

    checkFlushDone();
}

bool
GpuCache::quiescent() const
{
    return mshrs_.size() == 0 && bypassPending_.empty() &&
           wbQueue_.empty() && outstandingWbs_ == 0 &&
           respQueue_.empty() && memQueue_.empty();
}

void
GpuCache::reset(const PolicyView &pv, ReusePredictor *predictor)
{
    panic_if(!quiescent(), "resetting cache %s with traffic in flight",
             name().c_str());
    fatal_if(pv.rinsing && addrMap_ == nullptr,
             "cache rinsing requires a DRAM address map for row ids");

    // Only the policy flags and the seed may change across runs.
    cfg_.cacheLoads = pv.cacheLoads;
    cfg_.cacheStores = pv.cacheStores;
    cfg_.allocationBypass = pv.allocationBypass;
    cfg_.rinsing = pv.rinsing;
    cfg_.seed = pv.seed;
    predictor_ = predictor;

    tags_.reset(cfg_.seed);
    mshrs_.clear();
    dbi_->reset();
    bypassPending_.clear();
    wbQueue_.clear();
    outstandingWbs_ = 0;
    flushDone_ = nullptr;
    respQueue_.reset();
    memQueue_.reset();

    nextPortFree_ = 0;
    retryNeeded_ = false;
    stalled_ = false;
    stallStart_ = 0;
    backpressured_ = false;
    backpressureStart_ = 0;

    statHits_.reset();
    statMisses_.reset();
    statMshrCoalesced_.reset();
    statBypassReads_.reset();
    statBypassWrites_.reset();
    statBypassCoalesced_.reset();
    statStoresAbsorbed_.reset();
    statWritebacks_.reset();
    statRinseWritebacks_.reset();
    statRinseDeferred_.reset();
    statFlushWritebacks_.reset();
    statAllocBlockedRejects_.reset();
    statAllocBypassed_.reset();
    statPredictorBypasses_.reset();
    statStallCycles_.reset();
    statBackpressureCycles_.reset();
    statRejects_.reset();
    statRejectPort_.reset();
    statRejectMshr_.reset();
    statRejectMemq_.reset();
    statInvalidations_.reset();
}

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

void
GpuCache::regStats(StatGroup &group)
{
    group.addScalar("hits", "demand hits", &statHits_);
    group.addScalar("misses", "demand misses (fills issued)",
                    &statMisses_);
    group.addScalar("mshr_coalesced", "requests coalesced onto MSHRs",
                    &statMshrCoalesced_);
    group.addScalar("bypass_reads", "bypass read requests forwarded",
                    &statBypassReads_);
    group.addScalar("bypass_writes", "bypass writes forwarded",
                    &statBypassWrites_);
    group.addScalar("bypass_coalesced",
                    "reads coalesced onto pending bypasses",
                    &statBypassCoalesced_);
    group.addScalar("stores_absorbed", "stores coalesced into the cache",
                    &statStoresAbsorbed_);
    group.addScalar("writebacks", "dirty writebacks issued",
                    &statWritebacks_);
    group.addScalar("rinse_writebacks", "writebacks from DBI rinsing",
                    &statRinseWritebacks_);
    group.addScalar("rinse_deferred",
                    "eviction rows kept cached by the dynamic "
                    "rinse threshold",
                    &statRinseDeferred_);
    group.addScalar("flush_writebacks", "writebacks from scope flushes",
                    &statFlushWritebacks_);
    group.addScalar("alloc_blocked_rejects",
                    "requests stalled on busy sets / full write buffer",
                    &statAllocBlockedRejects_);
    group.addScalar("alloc_bypassed",
                    "requests converted to bypass by AB",
                    &statAllocBypassed_);
    group.addScalar("predictor_bypasses",
                    "requests bypassed by PC prediction",
                    &statPredictorBypasses_);
    group.addScalar("stall_cycles", "cycles a ready request was blocked",
                    &statStallCycles_);
    group.addScalar("backpressure_cycles",
                    "cycles bypass traffic waited on memory queues",
                    &statBackpressureCycles_);
    group.addScalar("rejects", "requests rejected (all reasons)",
                    &statRejects_);
    group.addScalar("rejects_port", "rejects: port busy",
                    &statRejectPort_);
    group.addScalar("rejects_mshr", "rejects: MSHR/targets full",
                    &statRejectMshr_);
    group.addScalar("rejects_memq", "rejects: downstream queue full",
                    &statRejectMemq_);
    group.addScalar("invalidations", "lines self-invalidated",
                    &statInvalidations_);
    group.addFormula("hit_rate", "hits / (hits + misses)", [this] {
        double acc = demandAccesses();
        return acc > 0 ? statHits_.value() / acc : 0.0;
    });
    dbi_->regStats(group.child("dbi"));
}

} // namespace migc
