/**
 * @file
 * The GPU cache controller used for both the per-CU L1s and the
 * banked shared L2.
 *
 * Implements the mechanisms the paper's evaluation depends on:
 *  - non-blocking misses with MSHR target coalescing;
 *  - a bypass path whose reads coalesce in a pending table while the
 *    original bypass request is in flight (Section III);
 *  - blocking allocation: when every way of the target set is busy
 *    (fill pending), the request stalls - the paper's primary cache
 *    stall source (Section VI.C.1) - unless allocation bypass is
 *    enabled (Section VII.A), in which case the request is converted
 *    to a bypass request;
 *  - write coalescing at the L2 (CacheRW): store misses allocate
 *    dirty without fetching, and dirty data drains on eviction or at
 *    system-scope flushes (Section III);
 *  - Dirty-Block Index row rinsing (Section VII.B);
 *  - PC-based L2 bypass prediction for loads and stores
 *    (Section VII.C).
 */

#ifndef MIGC_CACHE_GPU_CACHE_HH
#define MIGC_CACHE_GPU_CACHE_HH

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/dbi.hh"
#include "cache/mshr.hh"
#include "cache/tags.hh"
#include "dram/address_map.hh"
#include "mem/packet_pool.hh"
#include "mem/packet_queue.hh"
#include "mem/port.hh"
#include "policy/policy_engine.hh"
#include "policy/reuse_predictor.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace migc
{

/** Construction parameters for one cache (bank). */
struct GpuCacheConfig
{
    std::string name = "cache";
    std::uint64_t size = 16 * 1024;
    unsigned assoc = 16;
    unsigned lineSize = 64;

    /** Tag+data pipeline depth for a hit, in cycles. */
    Cycles lookupLatency{4};

    /** Fill-to-response latency, in cycles. */
    Cycles responseLatency{2};

    /** Latency of the bypass path, in cycles. */
    Cycles bypassLatency{1};

    std::size_t mshrs = 32;
    std::size_t targetsPerMshr = 16;

    /** Pending-table entries for in-flight bypass reads. */
    std::size_t bypassEntries = 64;

    /** Outstanding evicted-dirty writebacks before allocation blocks. */
    std::size_t writeBufDepth = 16;

    /** Downstream request queue depth. */
    std::size_t memQueueDepth = 32;

    Tick clockPeriod = 625;
    ReplKind repl = ReplKind::lru;
    std::uint64_t seed = 1;

    /** log2 of the bank count this cache is one bank of (strips the
     *  bank-interleave bits from the set index). */
    unsigned bankInterleaveBits = 0;

    // --- policy-controlled behavior ---
    bool cacheLoads = true;
    bool cacheStores = false;
    bool allocationBypass = false;
    bool rinsing = false;
    std::size_t dbiRows = 64;
};

class GpuCache : public SimObject
{
  public:
    /**
     * @param addr_map DRAM address map; required when rinsing is on
     *                 (row ids), otherwise may be null.
     * @param predictor shared PC reuse predictor, or null to disable
     *                  prediction at this cache.
     * @param engine the owning System's policy engine, consulted at
     *               every allocate/bypass/rinse decision point, or
     *               null for standalone (unit-test) caches, which
     *               then behave exactly as their static config flags.
     * @param level which hierarchy level this cache serves; selects
     *              the engine's per-level verdicts.
     */
    GpuCache(const GpuCacheConfig &cfg, EventQueue &eq, PacketPool &pool,
             const AddressMap *addr_map, ReusePredictor *predictor,
             PolicyEngine *engine = nullptr,
             CacheLevel level = CacheLevel::l1);

    ~GpuCache() override;

    ResponsePort &cpuSidePort() { return cpuPort_; }

    RequestPort &memSidePort() { return memPort_; }

    /** Kernel-boundary self-invalidation of clean valid data. */
    std::uint64_t invalidateClean();

    /**
     * Write back all dirty data (system-scope synchronization).
     * @p on_done fires when every writeback has been acknowledged.
     */
    void flushDirty(std::function<void()> on_done);

    /** True when no request, fill, or writeback is in flight. */
    bool quiescent() const;

    /** The per-run mutable subset of GpuCacheConfig (reset()). */
    struct PolicyView
    {
        bool cacheLoads;
        bool cacheStores;
        bool allocationBypass;
        bool rinsing;
        std::uint64_t seed;
    };

    /**
     * Return the cache to its just-constructed state under a new
     * policy/seed combination while keeping every allocation (tag
     * array, DBI, MSHR buckets, queue storage) warm - reset performs
     * zero heap allocations. The geometry is fixed at construction;
     * only @p pv and the predictor binding change. The cache must be
     * quiescent. Part of System::reset().
     */
    void reset(const PolicyView &pv, ReusePredictor *predictor);

    void regStats(StatGroup &group) override;

    const Tags &tags() const { return tags_; }

    // --- aggregates for the experiment harness ---
    double demandHits() const { return statHits_.value(); }
    double demandMisses() const { return statMisses_.value(); }
    double demandAccesses() const
    {
        return statHits_.value() + statMisses_.value();
    }
    double stallCycles() const { return statStallCycles_.value(); }
    double allocBypassConversions() const
    {
        return statAllocBypassed_.value();
    }
    double writebacks() const { return statWritebacks_.value(); }
    double rinseWritebacks() const
    {
        return statRinseWritebacks_.value();
    }
    double predictorBypasses() const
    {
        return statPredictorBypasses_.value();
    }

  private:
    // --- ports ---
    class CpuSidePort : public ResponsePort
    {
      public:
        CpuSidePort(std::string name, GpuCache &cache)
            : ResponsePort(std::move(name)), cache_(cache)
        {}

        bool
        recvTimingReq(PacketPtr pkt) override
        {
            return cache_.handleRequest(pkt);
        }

      private:
        GpuCache &cache_;
    };

    class MemSidePort : public RequestPort
    {
      public:
        MemSidePort(std::string name, GpuCache &cache)
            : RequestPort(std::move(name)), cache_(cache)
        {}

        void
        recvTimingResp(PacketPtr pkt) override
        {
            cache_.handleResponse(pkt);
        }

        void recvReqRetry() override { cache_.memQueue_.retry(); }

      private:
        GpuCache &cache_;
    };

    /** Why a request was rejected (for stats and waiter wakeup). */
    enum class RejectReason
    {
        port,        ///< tag/bypass port occupied this cycle
        mshrFull,
        targetsFull,
        bypassFull,
        allocBlocked, ///< every way in the set busy
        writeBufFull,
        memQueueFull,
    };

    // --- request paths ---
    bool handleRequest(PacketPtr pkt);

    /** Per-request store verdict: does a store to @p addr coalesce
     *  here? Static policies answer with the capability flag alone;
     *  set dueling asks the engine for the set's constituency. */
    bool storeAllocates(Addr addr);

    /** Adaptive pre-bypass: convert this cached request to a bypass
     *  because its target set's occupancy crossed the threshold? */
    bool occupancyPreBypass(PacketPtr pkt);

    /** Duel cost accounting for leader sets (no-op unless dueling). */
    void noteDuelCost(Addr addr, DuelRole charged_role);

    bool cachedRead(PacketPtr pkt);
    bool cachedWrite(PacketPtr pkt);
    bool bypassRead(PacketPtr pkt);
    bool bypassWrite(PacketPtr pkt);

    // --- response paths ---
    void handleResponse(PacketPtr pkt);
    void completeFill(PacketPtr fill_pkt);
    void completeBypassRead(PacketPtr fwd_pkt);
    void handleWritebackResp(PacketPtr pkt);

    // --- eviction / writeback machinery ---
    /**
     * Make @p blk reusable: write it back if dirty (plus the DBI
     * rinse set when enabled) and invalidate it.
     */
    void evictBlock(CacheBlk *blk);
    void scheduleWriteback(Addr line_addr, std::uint32_t flags);
    void drainWritebacks();
    void checkFlushDone();

    // --- flow control ---
    /**
     * Refuse the current request. @p counted_stall selects whether
     * the blocked time counts as a cache stall (a ready request
     * blocked from querying the cache, Section VI.C.1) or as memory
     * back-pressure (bypass traffic waiting on a full downstream
     * queue, which does not query the cache at all).
     */
    bool reject(RejectReason reason, bool counted_stall);
    void accepted();
    void maybeSendRetry();
    void occupyPort();

    /** Train the predictor for a block leaving the cache. */
    void trainOnEviction(const CacheBlk &blk);

    GpuCacheConfig cfg_;
    PacketPool &pktPool_;
    const AddressMap *addrMap_;
    ReusePredictor *predictor_;
    PolicyEngine *engine_;
    CacheLevel level_;

    Tags tags_;
    MshrFile mshrs_;
    std::unique_ptr<DirtyBlockIndex> dbi_;

    CpuSidePort cpuPort_;
    MemSidePort memPort_;
    RespPacketQueue respQueue_;
    ReqPacketQueue memQueue_;

    /** In-flight bypass reads: line addr -> waiting targets. */
    struct BypassEntry
    {
        std::uint64_t fwdPktId = 0;
        std::vector<PacketPtr> targets;
    };
    std::unordered_map<Addr, BypassEntry> bypassPending_;

    /** Writebacks awaiting downstream queue space. */
    struct PendingWb
    {
        Addr lineAddr;
        std::uint32_t flags;
    };
    std::deque<PendingWb> wbQueue_;
    std::size_t outstandingWbs_ = 0;
    EventFunctionWrapper wbDrainEvent_;

    std::function<void()> flushDone_;

    Tick nextPortFree_ = 0;
    bool retryNeeded_ = false;
    bool stalled_ = false;
    Tick stallStart_ = 0;
    bool backpressured_ = false;
    Tick backpressureStart_ = 0;
    EventFunctionWrapper retryEvent_;

    // --- statistics ---
    StatScalar statHits_;
    StatScalar statMisses_;
    StatScalar statMshrCoalesced_;
    StatScalar statBypassReads_;
    StatScalar statBypassWrites_;
    StatScalar statBypassCoalesced_;
    StatScalar statStoresAbsorbed_;
    StatScalar statWritebacks_;
    StatScalar statRinseWritebacks_;
    StatScalar statRinseDeferred_;
    StatScalar statFlushWritebacks_;
    StatScalar statAllocBlockedRejects_;
    StatScalar statAllocBypassed_;
    StatScalar statPredictorBypasses_;
    StatScalar statStallCycles_;
    StatScalar statBackpressureCycles_;
    StatScalar statRejects_;
    StatScalar statRejectPort_;
    StatScalar statRejectMshr_;
    StatScalar statRejectMemq_;
    StatScalar statInvalidations_;
};

} // namespace migc

#endif // MIGC_CACHE_GPU_CACHE_HH
