/**
 * @file
 * Build-time-dispatched vector kernels for the tag-store hot paths.
 *
 * One ISA is selected per build: AVX2 or SSE2 on x86-64, NEON on
 * aarch64, and a portable scalar path everywhere else or when
 * MIGC_NO_SIMD is defined (the CMake option of the same name). The
 * scalar variants are ALWAYS compiled and exported under their own
 * names, so a vector build carries its own reference implementation:
 * tests/test_simd_paths.cc drives both through the same inputs and
 * asserts identical results, and the MIGC_NO_SIMD CI leg runs the
 * whole suite on the scalar path so it can never rot.
 *
 * Every kernel is branch-exact with its scalar variant: the same
 * index is returned for the same input, so swapping ISAs can never
 * change simulated behavior (the goldens pin this end to end).
 *
 * All inline definitions here must be identical across translation
 * units — the selecting macros are PUBLIC compile options on the
 * migc target, so every dependent target sees the same ISA.
 */

#ifndef MIGC_CACHE_SIMD_HH
#define MIGC_CACHE_SIMD_HH

#include <bit>
#include <cstddef>
#include <cstdint>

#if defined(MIGC_NO_SIMD)
#define MIGC_SIMD_SCALAR 1
#elif defined(__AVX2__)
#define MIGC_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64)
#define MIGC_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) || defined(__ARM_NEON)
#define MIGC_SIMD_NEON 1
#include <arm_neon.h>
#else
#define MIGC_SIMD_SCALAR 1
#endif

namespace migc
{
namespace simd
{

/**
 * Extra 64-bit lanes callers must allocate (as readable memory) past
 * the end of any array handed to findLane, so the last vector load
 * never reads out of bounds. Matches in the over-read region are
 * handled (never returned), so the padding's contents are
 * unconstrained.
 */
inline constexpr unsigned kLanePad = 4;

/** Selected ISA, for logs and the perf-harness JSON. */
inline const char *
isaName()
{
#if defined(MIGC_SIMD_AVX2)
    return "avx2";
#elif defined(MIGC_SIMD_SSE2)
    return "sse2";
#elif defined(MIGC_SIMD_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

// ---------------------------------------------------------------------
// findLane: first index i < n with lanes[i] == key, else n.
// ---------------------------------------------------------------------

/** Portable reference; always compiled. */
inline unsigned
findLaneScalar(const std::uint64_t *lanes, unsigned n, std::uint64_t key)
{
    for (unsigned i = 0; i < n; ++i) {
        if (lanes[i] == key)
            return i;
    }
    return n;
}

/**
 * First lane holding @p key, scanning in ascending index order.
 * Requires kLanePad readable lanes past lanes[n-1]; padding matches
 * are ignored. Returns n when no lane < n matches.
 */
inline unsigned
findLane(const std::uint64_t *lanes, unsigned n, std::uint64_t key)
{
#if defined(MIGC_SIMD_AVX2)
    const __m256i k = _mm256_set1_epi64x(static_cast<long long>(key));
    if (n == 16) {
        // The default associativity. Branchless full scan: with the
        // matching way at a random position, the early-exit loop's
        // per-block branches mispredict constantly; one combined
        // 16-bit mask plus a single ctz is ~3x faster on the lookup
        // bench. ctz of the combined mask is still the lowest
        // matching lane, so first-match semantics are unchanged.
        const auto mask4 = [&](unsigned i) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(lanes + i));
            return static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, k))));
        };
        const unsigned m = mask4(0) | mask4(4) << 4 | mask4(8) << 8 |
                           mask4(12) << 12;
        return m ? static_cast<unsigned>(std::countr_zero(m)) : 16;
    }
    for (unsigned i = 0; i < n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(lanes + i));
        const int m = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, k)));
        if (m) {
            // Only the final block can overhang n; a sub-n match in
            // it would be the lowest set bit, so idx >= n means the
            // match sits entirely in the overhang.
            const unsigned idx =
                i + static_cast<unsigned>(
                        std::countr_zero(static_cast<unsigned>(m)));
            return idx < n ? idx : n;
        }
    }
    return n;
#elif defined(MIGC_SIMD_SSE2)
    // SSE2 has no 64-bit compare: compare 32-bit halves and AND each
    // half with its swapped neighbour so a lane reads all-ones only
    // when both halves matched.
    const __m128i k = _mm_set_epi64x(static_cast<long long>(key),
                                     static_cast<long long>(key));
    const auto mask2 = [&](unsigned i) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(lanes + i));
        const __m128i eq32 = _mm_cmpeq_epi32(v, k);
        const __m128i eq64 = _mm_and_si128(
            eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
        return static_cast<unsigned>(
            _mm_movemask_pd(_mm_castsi128_pd(eq64)));
    };
    if (n == 16) {
        // Branchless full scan for the default associativity (see
        // the AVX2 comment).
        unsigned m = 0;
        for (unsigned i = 0; i < 16; i += 2)
            m |= mask2(i) << i;
        return m ? static_cast<unsigned>(std::countr_zero(m)) : 16;
    }
    for (unsigned i = 0; i < n; i += 2) {
        const unsigned m = mask2(i);
        if (m) {
            const unsigned idx =
                i + static_cast<unsigned>(std::countr_zero(m));
            return idx < n ? idx : n;
        }
    }
    return n;
#elif defined(MIGC_SIMD_NEON)
    const uint64x2_t k = vdupq_n_u64(key);
    for (unsigned i = 0; i < n; i += 2) {
        const uint64x2_t eq = vceqq_u64(vld1q_u64(lanes + i), k);
        if (vgetq_lane_u64(eq, 0))
            return i < n ? i : n;
        if (vgetq_lane_u64(eq, 1))
            return i + 1 < n ? i + 1 : n;
    }
    return n;
#else
    return findLaneScalar(lanes, n, key);
#endif
}

// ---------------------------------------------------------------------
// countByteEq: number of bytes equal to key. No padding required.
// ---------------------------------------------------------------------

/** Portable reference; always compiled. */
inline std::size_t
countByteEqScalar(const std::uint8_t *data, std::size_t n,
                  std::uint8_t key)
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i)
        count += data[i] == key;
    return count;
}

inline std::size_t
countByteEq(const std::uint8_t *data, std::size_t n, std::uint8_t key)
{
#if defined(MIGC_SIMD_AVX2)
    const __m256i k = _mm256_set1_epi8(static_cast<char>(key));
    std::size_t count = 0, i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(data + i));
        count += static_cast<unsigned>(std::popcount(
            static_cast<std::uint32_t>(
                _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, k)))));
    }
    return count + countByteEqScalar(data + i, n - i, key);
#elif defined(MIGC_SIMD_SSE2)
    const __m128i k = _mm_set1_epi8(static_cast<char>(key));
    std::size_t count = 0, i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(data + i));
        count += static_cast<unsigned>(std::popcount(
            static_cast<std::uint32_t>(
                _mm_movemask_epi8(_mm_cmpeq_epi8(v, k)))));
    }
    return count + countByteEqScalar(data + i, n - i, key);
#elif defined(MIGC_SIMD_NEON)
    // vshrn narrows each 16-bit half-pair of compare results to a
    // nibble, packing the 16-lane compare mask into one u64 with 4
    // bits per byte lane.
    const uint8x16_t k = vdupq_n_u8(key);
    std::size_t count = 0, i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t eq = vceqq_u8(vld1q_u8(data + i), k);
        const std::uint64_t m = vget_lane_u64(
            vreinterpret_u64_u8(
                vshrn_n_u16(vreinterpretq_u16_u8(eq), 4)),
            0);
        count += static_cast<unsigned>(std::popcount(m)) / 4;
    }
    return count + countByteEqScalar(data + i, n - i, key);
#else
    return countByteEqScalar(data, n, key);
#endif
}

// ---------------------------------------------------------------------
// forEachByteEq: fn(i) for each data[i] == key, ascending i.
// ---------------------------------------------------------------------

/**
 * Portable reference; always compiled. The byte is re-read right
 * before each call, so a callback may flip the byte it is visiting
 * (the flush path does exactly that) without the iteration going
 * stale; callbacks must not modify other bytes of @p data.
 */
template <typename Fn>
inline void
forEachByteEqScalar(const std::uint8_t *data, std::size_t n,
                    std::uint8_t key, Fn &&fn)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (data[i] == key)
            fn(i);
    }
}

template <typename Fn>
inline void
forEachByteEq(const std::uint8_t *data, std::size_t n, std::uint8_t key,
              Fn &&fn)
{
#if defined(MIGC_SIMD_AVX2)
    const __m256i k = _mm256_set1_epi8(static_cast<char>(key));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(data + i));
        std::uint32_t m = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, k)));
        while (m) {
            const std::size_t idx =
                i + static_cast<unsigned>(std::countr_zero(m));
            m &= m - 1;
            // Re-check: the callback may have flipped a byte of this
            // chunk after its mask was computed.
            if (data[idx] == key)
                fn(idx);
        }
    }
    forEachByteEqScalar(data + i, n - i, key,
                        [&](std::size_t t) { fn(i + t); });
#elif defined(MIGC_SIMD_SSE2)
    const __m128i k = _mm_set1_epi8(static_cast<char>(key));
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(data + i));
        std::uint32_t m = static_cast<std::uint32_t>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(v, k)));
        while (m) {
            const std::size_t idx =
                i + static_cast<unsigned>(std::countr_zero(m));
            m &= m - 1;
            if (data[idx] == key)
                fn(idx);
        }
    }
    forEachByteEqScalar(data + i, n - i, key,
                        [&](std::size_t t) { fn(i + t); });
#elif defined(MIGC_SIMD_NEON)
    const uint8x16_t k = vdupq_n_u8(key);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t eq = vceqq_u8(vld1q_u8(data + i), k);
        std::uint64_t m = vget_lane_u64(
            vreinterpret_u64_u8(
                vshrn_n_u16(vreinterpretq_u16_u8(eq), 4)),
            0);
        while (m) {
            const unsigned bit = static_cast<unsigned>(std::countr_zero(m));
            const std::size_t idx = i + bit / 4;
            m &= ~(0xFull << (bit & ~3u)); // clear this byte's nibble
            if (data[idx] == key)
                fn(idx);
        }
    }
    forEachByteEqScalar(data + i, n - i, key,
                        [&](std::size_t t) { fn(i + t); });
#else
    forEachByteEqScalar(data, n, key, static_cast<Fn &&>(fn));
#endif
}

} // namespace simd
} // namespace migc

#endif // MIGC_CACHE_SIMD_HH
